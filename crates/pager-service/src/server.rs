//! Line-oriented servers over TCP and stdio.
//!
//! Both fronts speak the [`crate::proto`] JSON-lines protocol against
//! one shared [`PagerService`]. The TCP server accepts on a
//! non-blocking listener and handles each connection on its own
//! thread; a `{"cmd": "shutdown"}` line (or [`ServerHandle::stop`])
//! makes the accept loop exit.
//!
//! Shutdown *drains*: connection threads read with a short timeout so
//! they notice the stop flag between requests, and every request that
//! was already being handled is answered before its connection
//! closes. [`ServerHandle::drain`] blocks until the in-flight count
//! reaches zero (or a budget expires), so an orderly shutdown drops
//! nothing that was admitted.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::{TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::proto::handle_line;
use crate::service::PagerService;

/// How often the accept loop re-checks the stop flag.
const ACCEPT_POLL: Duration = Duration::from_millis(25);

/// Read timeout on connection sockets: the gap between a peer going
/// quiet and its thread noticing a stop request.
const READ_POLL: Duration = Duration::from_millis(50);

/// How often [`ServerHandle::drain`] re-checks the in-flight count.
const DRAIN_POLL: Duration = Duration::from_millis(5);

/// A running TCP server.
pub struct ServerHandle {
    addr: std::net::SocketAddr,
    stop: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    inflight: Arc<AtomicU64>,
}

impl ServerHandle {
    /// The address the listener is bound to (useful with port 0).
    #[must_use]
    pub fn local_addr(&self) -> std::net::SocketAddr {
        self.addr
    }

    /// Whether the accept loop has been asked to stop.
    #[must_use]
    pub fn stopping(&self) -> bool {
        self.stop.load(Ordering::SeqCst)
    }

    /// Requests currently being handled (between reading a line and
    /// writing its response) across all connections.
    #[must_use]
    pub fn inflight(&self) -> u64 {
        self.inflight.load(Ordering::SeqCst)
    }

    /// Stops accepting connections and joins the accept thread.
    /// Threads serving open connections finish the request they are
    /// on (if any) and close at their next read-timeout tick.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }

    /// Orderly shutdown: stops accepting, then waits up to `budget`
    /// for requests already being handled to finish. Returns the
    /// number still in flight when it returned — `0` means a clean
    /// drain with nothing dropped.
    pub fn drain(&mut self, budget: Duration) -> u64 {
        self.stop();
        let deadline = Instant::now() + budget;
        loop {
            let pending = self.inflight.load(Ordering::SeqCst);
            if pending == 0 || Instant::now() >= deadline {
                return pending;
            }
            std::thread::sleep(DRAIN_POLL);
        }
    }

    /// Blocks until the accept loop exits (e.g. a client sent
    /// `{"cmd": "shutdown"}`).
    pub fn join(&mut self) {
        if let Some(handle) = self.accept_thread.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Binds `addr` and serves the wire protocol until stopped.
///
/// # Errors
///
/// An [`std::io::Error`] when the address cannot be bound.
pub fn serve_tcp<A: ToSocketAddrs>(
    service: Arc<PagerService>,
    addr: A,
) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    listener.set_nonblocking(true)?;
    let stop = Arc::new(AtomicBool::new(false));
    let inflight = Arc::new(AtomicU64::new(0));
    let accept_stop = Arc::clone(&stop);
    let accept_inflight = Arc::clone(&inflight);
    let accept_thread = std::thread::Builder::new()
        .name("pager-accept".into())
        .spawn(move || accept_loop(&listener, &service, &accept_stop, &accept_inflight))?;
    Ok(ServerHandle {
        addr,
        stop,
        accept_thread: Some(accept_thread),
        inflight,
    })
}

fn accept_loop(
    listener: &TcpListener,
    service: &Arc<PagerService>,
    stop: &Arc<AtomicBool>,
    inflight: &Arc<AtomicU64>,
) {
    let mut connection_id = 0u64;
    while !stop.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                connection_id += 1;
                let service = Arc::clone(service);
                let stop = Arc::clone(stop);
                let inflight = Arc::clone(inflight);
                let spawned = std::thread::Builder::new()
                    .name(format!("pager-conn-{connection_id}"))
                    .spawn(move || serve_connection(&stream, &service, &stop, &inflight));
                if spawned.is_err() {
                    // Out of threads: drop the connection rather than
                    // the whole server.
                    continue;
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(ACCEPT_POLL);
            }
            Err(_) => {
                // Transient accept errors (e.g. ECONNABORTED): retry.
                std::thread::sleep(ACCEPT_POLL);
            }
        }
    }
}

fn serve_connection(
    stream: &TcpStream,
    service: &PagerService,
    stop: &AtomicBool,
    inflight: &AtomicU64,
) {
    // Each line is handled synchronously on this dedicated thread.
    // Reads time out at READ_POLL so the thread can notice a stop
    // request between lines instead of blocking in `read` forever.
    if stream.set_read_timeout(Some(READ_POLL)).is_err() {
        return;
    }
    let mut reader = BufReader::new(match stream.try_clone() {
        Ok(s) => s,
        Err(_) => return,
    });
    let mut writer = BufWriter::new(stream);
    let mut line = String::new();
    loop {
        // NOTE: on timeout `read_line` keeps the bytes it already
        // consumed in `line`, so a partially received request survives
        // the poll tick; only a *processed* line clears the buffer.
        match reader.read_line(&mut line) {
            Ok(0) => return, // EOF
            Ok(_) => {
                if !line.trim().is_empty() {
                    // In-flight from here until the response is
                    // written: a drain must wait this request out.
                    inflight.fetch_add(1, Ordering::SeqCst);
                    let outcome = handle_line(service, &line);
                    let write_failed = writeln!(writer, "{}", outcome.response).is_err()
                        || writer.flush().is_err();
                    inflight.fetch_sub(1, Ordering::SeqCst);
                    if write_failed {
                        return;
                    }
                    if outcome.shutdown {
                        stop.store(true, Ordering::SeqCst);
                        return;
                    }
                }
                line.clear();
                if stop.load(Ordering::SeqCst) {
                    return; // draining: the response above was the last
                }
            }
            Err(e)
                if e.kind() == std::io::ErrorKind::WouldBlock
                    || e.kind() == std::io::ErrorKind::TimedOut =>
            {
                if stop.load(Ordering::SeqCst) {
                    return; // draining and idle: close
                }
            }
            Err(_) => return,
        }
    }
}

/// Serves the wire protocol over arbitrary reader/writer pairs (used
/// for `pager-serve --stdio` and in-process tests). Returns when the
/// reader reaches EOF or a shutdown line is handled.
///
/// # Errors
///
/// Propagates I/O errors from the reader or writer.
pub fn serve_lines<R: BufRead, W: Write>(
    service: &PagerService,
    reader: R,
    mut writer: W,
) -> std::io::Result<()> {
    for line in reader.lines() {
        let line = line?;
        if line.trim().is_empty() {
            continue;
        }
        let outcome = handle_line(service, &line);
        writeln!(writer, "{}", outcome.response)?;
        writer.flush()?;
        if outcome.shutdown {
            break;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;
    use jsonio::Value;
    use std::io::Cursor;

    fn service() -> Arc<PagerService> {
        Arc::new(PagerService::new(ServiceConfig {
            workers: 2,
            capacity: 64,
            ..ServiceConfig::default()
        }))
    }

    #[test]
    fn serve_lines_round_trip() {
        let svc = service();
        let input =
            "\n{\"id\": 1, \"instance\": [[0.5, 0.5]], \"delay\": 1}\n{\"cmd\": \"ping\"}\n";
        let mut out = Vec::new();
        serve_lines(&svc, Cursor::new(input), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        let first = jsonio::parse(lines[0]).unwrap();
        assert_eq!(first.get("ok").and_then(Value::as_bool), Some(true));
        assert!(lines[1].contains("pong"));
    }

    #[test]
    fn serve_lines_stops_on_shutdown() {
        let svc = service();
        let input = "{\"cmd\": \"shutdown\"}\n{\"cmd\": \"ping\"}\n";
        let mut out = Vec::new();
        serve_lines(&svc, Cursor::new(input), &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert_eq!(text.lines().count(), 1, "no output after shutdown");
        assert!(text.contains("stopping"));
    }

    #[test]
    fn tcp_round_trip_and_stop() {
        let svc = service();
        let mut handle = serve_tcp(Arc::clone(&svc), ("127.0.0.1", 0)).unwrap();
        let addr = handle.local_addr();
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        let request = r#"{"id": 9, "instance": [[0.7, 0.3]], "delay": 1}"#;
        writeln!(writer, "{request}").unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let v = jsonio::parse(&line).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("id").and_then(Value::as_i64), Some(9));
        handle.stop();
        assert!(handle.stopping());
    }

    #[test]
    fn drain_answers_inflight_requests_before_closing() {
        let svc = service();
        let mut handle = serve_tcp(Arc::clone(&svc), ("127.0.0.1", 0)).unwrap();
        let addr = handle.local_addr();
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        // Ping round-trip first so the connection is accepted and its
        // thread is serving before the drain starts (otherwise the
        // drain could stop the accept loop before the connection
        // exists at all).
        writeln!(writer, r#"{{"cmd": "ping"}}"#).unwrap();
        writer.flush().unwrap();
        let mut pong = String::new();
        reader.read_line(&mut pong).unwrap();
        assert!(pong.contains("pong"));
        let request = r#"{"id": 3, "instance": [[0.6, 0.4]], "delay": 2}"#;
        writeln!(writer, "{request}").unwrap();
        writer.flush().unwrap();
        // Drain while the request may still be in flight: it must be
        // answered (not dropped) and the drain must report zero
        // pending.
        let pending = handle.drain(Duration::from_secs(5));
        assert_eq!(pending, 0, "drain left requests unanswered");
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        let v = jsonio::parse(&line).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("id").and_then(Value::as_i64), Some(3));
        assert_eq!(handle.inflight(), 0);
    }

    #[test]
    fn tcp_shutdown_command_stops_accept_loop() {
        let svc = service();
        let mut handle = serve_tcp(Arc::clone(&svc), ("127.0.0.1", 0)).unwrap();
        let addr = handle.local_addr();
        let stream = TcpStream::connect(addr).unwrap();
        let mut reader = BufReader::new(stream.try_clone().unwrap());
        let mut writer = BufWriter::new(stream);
        let request = r#"{"cmd": "shutdown"}"#;
        writeln!(writer, "{request}").unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        reader.read_line(&mut line).unwrap();
        assert!(line.contains("stopping"));
        handle.join();
        assert!(handle.stopping());
    }
}
