//! Solver-tier dispatch.
//!
//! One request names *what* it wants ([`Variant`]); the planner
//! decides *which solver* actually runs ([`Tier`]) and times it:
//!
//! * small instances (subset-DP reach) go to the exact optimum,
//! * everything else goes to the paper's Fig. 1 greedy
//!   (`e/(e−1)`-approximate, `O(c(m + dc))`),
//! * bandwidth-bounded and signature (`k`-of-`m`) variants dispatch to
//!   their Section 5 solvers on request.

use std::time::Instant;

use pager_core::{bandwidth, optimal, signature, Delay, Instance};
use pager_core::{greedy_strategy_planned, Strategy};

/// What kind of plan a request wants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Let the planner pick: exact when affordable, greedy otherwise.
    Auto,
    /// Force the exact optimum (errors on instances beyond its reach).
    Exact,
    /// Force the Fig. 1 greedy approximation.
    Greedy,
    /// Bandwidth-limited paging: at most `b` cells per round.
    Bandwidth(usize),
    /// Signature problem: stop once `k` of the `m` devices are found.
    Signature(usize),
}

impl Variant {
    /// Stable name for keys/metrics/wire.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Variant::Auto => "auto",
            Variant::Exact => "exact",
            Variant::Greedy => "greedy",
            Variant::Bandwidth(_) => "bandwidth",
            Variant::Signature(_) => "signature",
        }
    }
}

/// Which solver actually produced a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// Optimal subset-DP / exhaustive solver.
    Exact,
    /// Fig. 1 greedy.
    Greedy,
    /// Bandwidth-bounded greedy.
    Bandwidth,
    /// Signature greedy.
    Signature,
}

impl Tier {
    /// Stable name for metrics and the wire protocol.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Tier::Exact => "exact",
            Tier::Greedy => "greedy",
            Tier::Bandwidth => "bandwidth",
            Tier::Signature => "signature",
        }
    }
}

/// Size limits for automatic exact-tier dispatch.
///
/// `optimal_subset_dp` is `O(d·3^c)` time / `O(2^c)` space, so the
/// default caps keep the exact tier around a millisecond.
#[derive(Debug, Clone, Copy)]
pub struct TierPolicy {
    /// Maximum cells for `Auto` to choose the exact solver.
    pub exact_max_cells: usize,
    /// Maximum devices for `Auto` to choose the exact solver.
    pub exact_max_devices: usize,
}

impl Default for TierPolicy {
    fn default() -> TierPolicy {
        TierPolicy {
            exact_max_cells: 10,
            exact_max_devices: 4,
        }
    }
}

/// A finished plan: the strategy, its cost, and provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// The paging strategy.
    pub strategy: Strategy,
    /// Expected number of cells paged under the planning instance.
    pub expected_paging: f64,
    /// The solver tier that produced it.
    pub tier: Tier,
    /// Wall-clock planning time.
    pub planning_micros: u64,
}

/// A planning failure (bad variant parameters or solver limits).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanError(pub String);

impl core::fmt::Display for PlanError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl std::error::Error for PlanError {}

/// Plans `instance` under `delay` with the solver tier selected by
/// `variant` and `policy`.
///
/// # Errors
///
/// [`PlanError`] when a forced exact plan exceeds solver limits, a
/// bandwidth cap is infeasible, or a signature threshold is invalid.
pub fn plan(
    instance: &Instance,
    delay: Delay,
    variant: Variant,
    policy: &TierPolicy,
) -> Result<Plan, PlanError> {
    let start = Instant::now();
    let (tier, planned) = match variant {
        Variant::Greedy => (Tier::Greedy, Ok(greedy_strategy_planned(instance, delay))),
        Variant::Exact => (Tier::Exact, plan_exact(instance, delay)),
        Variant::Auto => {
            if instance.num_cells() <= policy.exact_max_cells
                && instance.num_devices() <= policy.exact_max_devices
            {
                (Tier::Exact, plan_exact(instance, delay))
            } else {
                (Tier::Greedy, Ok(greedy_strategy_planned(instance, delay)))
            }
        }
        Variant::Bandwidth(cap) => (
            Tier::Bandwidth,
            bandwidth::greedy_strategy_bounded(instance, delay, cap)
                .map_err(|e| PlanError(e.to_string())),
        ),
        Variant::Signature(k) => (
            Tier::Signature,
            signature::greedy_signature(instance, delay, k).map_err(|e| PlanError(e.to_string())),
        ),
    };
    let planned = planned?;
    let micros = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
    Ok(Plan {
        strategy: planned.strategy,
        expected_paging: planned.expected_paging,
        tier,
        planning_micros: micros,
    })
}

fn plan_exact(instance: &Instance, delay: Delay) -> Result<pager_core::PlannedStrategy, PlanError> {
    let c = instance.num_cells();
    if c > optimal::SUBSET_DP_MAX_CELLS {
        return Err(PlanError(format!(
            "exact tier supports at most {} cells, got {c}",
            optimal::SUBSET_DP_MAX_CELLS
        )));
    }
    // The subset DP requires d <= c; clamp like the greedy tier does.
    let delay = delay.clamp_to_cells(c);
    optimal::optimal_subset_dp(instance, delay).map_err(|e| PlanError(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Instance {
        Instance::from_rows(vec![vec![0.4, 0.3, 0.2, 0.1], vec![0.1, 0.2, 0.3, 0.4]]).unwrap()
    }

    #[test]
    fn auto_dispatches_small_to_exact() {
        let p = plan(
            &small(),
            Delay::new(2).unwrap(),
            Variant::Auto,
            &TierPolicy::default(),
        )
        .unwrap();
        assert_eq!(p.tier, Tier::Exact);
        // The exact plan is at least as good as greedy.
        let g = plan(
            &small(),
            Delay::new(2).unwrap(),
            Variant::Greedy,
            &TierPolicy::default(),
        )
        .unwrap();
        assert_eq!(g.tier, Tier::Greedy);
        assert!(p.expected_paging <= g.expected_paging + 1e-12);
    }

    #[test]
    fn auto_dispatches_large_to_greedy() {
        let inst = Instance::uniform(3, 40).unwrap();
        let p = plan(
            &inst,
            Delay::new(4).unwrap(),
            Variant::Auto,
            &TierPolicy::default(),
        )
        .unwrap();
        assert_eq!(p.tier, Tier::Greedy);
        assert_eq!(p.strategy.num_cells(), 40);
    }

    #[test]
    fn forced_exact_rejects_oversized() {
        let inst = Instance::uniform(2, optimal::SUBSET_DP_MAX_CELLS + 1).unwrap();
        let err = plan(
            &inst,
            Delay::new(2).unwrap(),
            Variant::Exact,
            &TierPolicy::default(),
        )
        .unwrap_err();
        assert!(err.0.contains("exact tier"), "{err}");
    }

    #[test]
    fn bandwidth_variant_respects_cap() {
        let inst = Instance::uniform(2, 12).unwrap();
        let p = plan(
            &inst,
            Delay::new(4).unwrap(),
            Variant::Bandwidth(3),
            &TierPolicy::default(),
        )
        .unwrap();
        assert_eq!(p.tier, Tier::Bandwidth);
        assert!(p.strategy.group_sizes().iter().all(|&s| s <= 3));
        // Infeasible cap errors instead of panicking.
        assert!(plan(
            &inst,
            Delay::new(2).unwrap(),
            Variant::Bandwidth(3),
            &TierPolicy::default(),
        )
        .is_err());
    }

    #[test]
    fn signature_variant_plans() {
        let p = plan(
            &small(),
            Delay::new(2).unwrap(),
            Variant::Signature(1),
            &TierPolicy::default(),
        )
        .unwrap();
        assert_eq!(p.tier, Tier::Signature);
        assert!(p.expected_paging > 0.0);
        assert!(plan(
            &small(),
            Delay::new(2).unwrap(),
            Variant::Signature(99),
            &TierPolicy::default(),
        )
        .is_err());
    }
}
