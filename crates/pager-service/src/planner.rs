//! Solver-tier dispatch.
//!
//! One request names *what* it wants ([`Variant`]); the planner
//! decides *which solver* actually runs ([`Tier`]) and times it:
//!
//! * small instances (subset-DP reach) go to the exact optimum,
//! * everything else goes to the paper's Fig. 1 greedy
//!   (`e/(e−1)`-approximate, `O(c(m + dc))`),
//! * bandwidth-bounded and signature (`k`-of-`m`) variants dispatch to
//!   their Section 5 solvers on request.
//!
//! Every solve runs under a cooperative [`CancelToken`]. An exact plan
//! abandoned at a deadline checkpoint is *downgraded*: re-planned with
//! the greedy tier (fast, `O(d·c²)`) and marked
//! [`Plan::downgraded`] so the client knows it got the approximation
//! instead of the optimum it asked for. Tiers with no cheaper
//! fallback (greedy, bandwidth, signature) surface
//! [`ServiceError::Overloaded`] instead.

use std::time::Instant;

use pager_core::cancel::CancelToken;
use pager_core::{bandwidth, optimal, signature, Delay, Error, Instance};
use pager_core::{greedy_strategy_planned_cancel, Strategy};

use crate::error::ServiceError;

/// What kind of plan a request wants.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Variant {
    /// Let the planner pick: exact when affordable, greedy otherwise.
    Auto,
    /// Force the exact optimum (errors on instances beyond its reach).
    Exact,
    /// Force the Fig. 1 greedy approximation.
    Greedy,
    /// Bandwidth-limited paging: at most `b` cells per round.
    Bandwidth(usize),
    /// Signature problem: stop once `k` of the `m` devices are found.
    Signature(usize),
}

impl Variant {
    /// Stable name for keys/metrics/wire.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Variant::Auto => "auto",
            Variant::Exact => "exact",
            Variant::Greedy => "greedy",
            Variant::Bandwidth(_) => "bandwidth",
            Variant::Signature(_) => "signature",
        }
    }
}

/// Which solver actually produced a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tier {
    /// Optimal subset-DP / exhaustive solver.
    Exact,
    /// Fig. 1 greedy.
    Greedy,
    /// Bandwidth-bounded greedy.
    Bandwidth,
    /// Signature greedy.
    Signature,
}

impl Tier {
    /// Stable name for metrics and the wire protocol.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Tier::Exact => "exact",
            Tier::Greedy => "greedy",
            Tier::Bandwidth => "bandwidth",
            Tier::Signature => "signature",
        }
    }
}

/// Size limits for automatic exact-tier dispatch.
///
/// `optimal_subset_dp` is `O(d·3^c)` time / `O(2^c)` space, so the
/// default caps keep the exact tier around a millisecond.
#[derive(Debug, Clone, Copy)]
pub struct TierPolicy {
    /// Maximum cells for `Auto` to choose the exact solver.
    pub exact_max_cells: usize,
    /// Maximum devices for `Auto` to choose the exact solver.
    pub exact_max_devices: usize,
}

impl Default for TierPolicy {
    fn default() -> TierPolicy {
        TierPolicy {
            exact_max_cells: 10,
            exact_max_devices: 4,
        }
    }
}

/// A finished plan: the strategy, its cost, and provenance.
#[derive(Debug, Clone, PartialEq)]
pub struct Plan {
    /// The paging strategy.
    pub strategy: Strategy,
    /// Expected number of cells paged under the planning instance.
    pub expected_paging: f64,
    /// The solver tier that produced it.
    pub tier: Tier,
    /// Wall-clock planning time.
    pub planning_micros: u64,
    /// The exact solve was abandoned at a deadline checkpoint and this
    /// plan came from the greedy fallback instead.
    pub downgraded: bool,
}

/// How long an overloaded client should back off before retrying.
/// Deliberately a small constant: under sustained overload the bounded
/// queue keeps shedding, and any retrying client re-probes quickly
/// without a thundering herd (the hint, not a timer, spreads retries).
pub const RETRY_AFTER_MS: u64 = 50;

/// Plans `instance` under `delay` with the solver tier selected by
/// `variant` and `policy`, polling `cancel` at solver checkpoints.
///
/// An exact solve (forced or auto-selected) cancelled mid-DP is
/// downgraded to the greedy tier — the fallback runs *without* the
/// token, since it is the cheap path and the response is more useful
/// than an error even slightly past the deadline.
///
/// # Errors
///
/// [`ServiceError::Unsupported`] when a forced exact plan exceeds
/// solver limits; [`ServiceError::BadRequest`] for an infeasible
/// bandwidth cap or invalid signature threshold;
/// [`ServiceError::Overloaded`] when a tier with no cheaper fallback
/// is cancelled by its deadline.
pub fn plan(
    instance: &Instance,
    delay: Delay,
    variant: Variant,
    policy: &TierPolicy,
    cancel: &CancelToken,
) -> Result<Plan, ServiceError> {
    let start = Instant::now();
    let want_exact = match variant {
        Variant::Exact => true,
        Variant::Auto => {
            instance.num_cells() <= policy.exact_max_cells
                && instance.num_devices() <= policy.exact_max_devices
        }
        _ => false,
    };
    let (tier, downgraded, planned) = if want_exact {
        match plan_exact(instance, delay, cancel) {
            Ok(planned) => (Tier::Exact, false, planned),
            Err(ServiceError::Overloaded { .. }) => {
                // Deadline fired mid-DP: degrade to greedy instead of
                // finishing the exact solve late.
                let fallback =
                    greedy_strategy_planned_cancel(instance, delay, &CancelToken::never())
                        .map_err(|e| ServiceError::Internal(e.to_string()))?;
                (Tier::Greedy, true, fallback)
            }
            Err(other) => return Err(other),
        }
    } else {
        let planned = match variant {
            Variant::Bandwidth(cap) => {
                bandwidth::greedy_strategy_bounded_cancel(instance, delay, cap, cancel)
                    .map_err(|e| map_solver_error(&e))?
            }
            Variant::Signature(k) => signature::greedy_signature_cancel(instance, delay, k, cancel)
                .map_err(|e| map_solver_error(&e))?,
            _ => greedy_strategy_planned_cancel(instance, delay, cancel)
                .map_err(|e| map_solver_error(&e))?,
        };
        let tier = match variant {
            Variant::Bandwidth(_) => Tier::Bandwidth,
            Variant::Signature(_) => Tier::Signature,
            _ => Tier::Greedy,
        };
        (tier, false, planned)
    };
    let micros = u64::try_from(start.elapsed().as_micros()).unwrap_or(u64::MAX);
    Ok(Plan {
        strategy: planned.strategy,
        expected_paging: planned.expected_paging,
        tier,
        planning_micros: micros,
        downgraded,
    })
}

/// Maps a core solver error onto the wire surface: cancellation means
/// the server ran out of budget (overloaded), everything else is the
/// request's fault.
fn map_solver_error(error: &Error) -> ServiceError {
    match error {
        Error::Cancelled => ServiceError::Overloaded {
            retry_after_ms: RETRY_AFTER_MS,
        },
        other => ServiceError::BadRequest(other.to_string()),
    }
}

fn plan_exact(
    instance: &Instance,
    delay: Delay,
    cancel: &CancelToken,
) -> Result<pager_core::PlannedStrategy, ServiceError> {
    let c = instance.num_cells();
    if c > optimal::SUBSET_DP_MAX_CELLS {
        return Err(ServiceError::Unsupported(format!(
            "exact tier supports at most {} cells, got {c}",
            optimal::SUBSET_DP_MAX_CELLS
        )));
    }
    // The subset DP requires d <= c; clamp like the greedy tier does.
    let delay = delay.clamp_to_cells(c);
    optimal::optimal_subset_dp_cancel(instance, delay, cancel).map_err(|e| map_solver_error(&e))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> Instance {
        Instance::from_rows(vec![vec![0.4, 0.3, 0.2, 0.1], vec![0.1, 0.2, 0.3, 0.4]]).unwrap()
    }

    fn live() -> CancelToken {
        CancelToken::never()
    }

    #[test]
    fn auto_dispatches_small_to_exact() {
        let p = plan(
            &small(),
            Delay::new(2).unwrap(),
            Variant::Auto,
            &TierPolicy::default(),
            &live(),
        )
        .unwrap();
        assert_eq!(p.tier, Tier::Exact);
        assert!(!p.downgraded);
        // The exact plan is at least as good as greedy.
        let g = plan(
            &small(),
            Delay::new(2).unwrap(),
            Variant::Greedy,
            &TierPolicy::default(),
            &live(),
        )
        .unwrap();
        assert_eq!(g.tier, Tier::Greedy);
        assert!(p.expected_paging <= g.expected_paging + 1e-12);
    }

    #[test]
    fn auto_dispatches_large_to_greedy() {
        let inst = Instance::uniform(3, 40).unwrap();
        let p = plan(
            &inst,
            Delay::new(4).unwrap(),
            Variant::Auto,
            &TierPolicy::default(),
            &live(),
        )
        .unwrap();
        assert_eq!(p.tier, Tier::Greedy);
        assert_eq!(p.strategy.num_cells(), 40);
    }

    #[test]
    fn forced_exact_rejects_oversized() {
        let inst = Instance::uniform(2, optimal::SUBSET_DP_MAX_CELLS + 1).unwrap();
        let err = plan(
            &inst,
            Delay::new(2).unwrap(),
            Variant::Exact,
            &TierPolicy::default(),
            &live(),
        )
        .unwrap_err();
        assert_eq!(err.code(), "unsupported");
        assert!(err.message().contains("exact tier"), "{err}");
    }

    #[test]
    fn bandwidth_variant_respects_cap() {
        let inst = Instance::uniform(2, 12).unwrap();
        let p = plan(
            &inst,
            Delay::new(4).unwrap(),
            Variant::Bandwidth(3),
            &TierPolicy::default(),
            &live(),
        )
        .unwrap();
        assert_eq!(p.tier, Tier::Bandwidth);
        assert!(p.strategy.group_sizes().iter().all(|&s| s <= 3));
        // Infeasible cap errors instead of panicking.
        let err = plan(
            &inst,
            Delay::new(2).unwrap(),
            Variant::Bandwidth(3),
            &TierPolicy::default(),
            &live(),
        )
        .unwrap_err();
        assert_eq!(err.code(), "bad_request");
    }

    #[test]
    fn signature_variant_plans() {
        let p = plan(
            &small(),
            Delay::new(2).unwrap(),
            Variant::Signature(1),
            &TierPolicy::default(),
            &live(),
        )
        .unwrap();
        assert_eq!(p.tier, Tier::Signature);
        assert!(p.expected_paging > 0.0);
        let err = plan(
            &small(),
            Delay::new(2).unwrap(),
            Variant::Signature(99),
            &TierPolicy::default(),
            &live(),
        )
        .unwrap_err();
        assert_eq!(err.code(), "bad_request");
    }

    #[test]
    fn expired_deadline_downgrades_exact_to_greedy() {
        // Big enough that the subset DP passes a checkpoint stride.
        let inst = Instance::uniform(2, 15).unwrap();
        let expired = CancelToken::with_timeout(std::time::Duration::ZERO);
        let p = plan(
            &inst,
            Delay::new(3).unwrap(),
            Variant::Exact,
            &TierPolicy::default(),
            &expired,
        )
        .unwrap();
        assert_eq!(p.tier, Tier::Greedy);
        assert!(p.downgraded);
        // The fallback really is the greedy plan.
        let g = plan(
            &inst,
            Delay::new(3).unwrap(),
            Variant::Greedy,
            &TierPolicy::default(),
            &live(),
        )
        .unwrap();
        assert_eq!(p.strategy, g.strategy);
    }

    #[test]
    fn expired_deadline_on_greedy_is_overloaded() {
        // Greedy has no cheaper fallback: a cancelled solve sheds.
        let inst = Instance::uniform(2, 200).unwrap();
        let expired = CancelToken::with_timeout(std::time::Duration::ZERO);
        let err = plan(
            &inst,
            Delay::new(8).unwrap(),
            Variant::Greedy,
            &TierPolicy::default(),
            &expired,
        )
        .unwrap_err();
        assert_eq!(err.code(), "overloaded");
    }
}
