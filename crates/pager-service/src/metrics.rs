//! Lock-free service metrics.
//!
//! Counters and latency histograms are plain atomics so the hot path
//! never takes a lock to record. Snapshots are assembled on demand
//! and dumped as JSON through [`jsonio`].

use std::sync::atomic::{AtomicU64, Ordering};

use jsonio::Value;

/// Histogram bucket count: bucket `i` holds samples in
/// `[2^(i-1), 2^i)` microseconds (bucket 0 is `< 1µs`).
const BUCKETS: usize = 32;

/// A log₂-bucketed latency histogram over microseconds.
#[derive(Debug, Default)]
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    total_micros: AtomicU64,
    max_micros: AtomicU64,
}

impl LatencyHistogram {
    /// Records one sample.
    pub fn record(&self, micros: u64) {
        let idx = (u64::BITS - micros.leading_zeros()).min(BUCKETS as u32 - 1) as usize;
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.total_micros.fetch_add(micros, Ordering::Relaxed);
        self.max_micros.fetch_max(micros, Ordering::Relaxed);
    }

    /// Number of recorded samples.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all recorded samples, in microseconds.
    pub fn total_micros(&self) -> u64 {
        self.total_micros.load(Ordering::Relaxed)
    }

    /// Upper bound (µs) of the bucket containing the `q`-quantile
    /// sample, or 0 with no samples. Approximate by construction —
    /// resolution is the power-of-two bucket width.
    pub fn quantile_upper_micros(&self, q: f64) -> u64 {
        let count = self.count();
        if count == 0 {
            return 0;
        }
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let target = ((count as f64) * q).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen += bucket.load(Ordering::Relaxed);
            if seen >= target {
                return if i == 0 { 1 } else { 1u64 << i };
            }
        }
        self.max_micros.load(Ordering::Relaxed)
    }

    /// Snapshot as a JSON object.
    pub fn to_json(&self) -> Value {
        let count = self.count();
        let total = self.total_micros.load(Ordering::Relaxed);
        #[allow(clippy::cast_precision_loss)]
        let mean = if count == 0 {
            0.0
        } else {
            total as f64 / count as f64
        };
        Value::object(vec![
            ("count", Value::from(count)),
            ("total_micros", Value::from(total)),
            ("mean_micros", Value::Float(mean)),
            (
                "p50_le_micros",
                Value::from(self.quantile_upper_micros(0.50)),
            ),
            (
                "p90_le_micros",
                Value::from(self.quantile_upper_micros(0.90)),
            ),
            (
                "p99_le_micros",
                Value::from(self.quantile_upper_micros(0.99)),
            ),
            (
                "max_micros",
                Value::from(self.max_micros.load(Ordering::Relaxed)),
            ),
        ])
    }
}

/// All counters the service exposes.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Total plan requests received (cacheable or not).
    pub requests: AtomicU64,
    /// Requests answered straight from the strategy cache.
    pub cache_hits: AtomicU64,
    /// Requests that had to plan (or join an in-flight plan).
    pub cache_misses: AtomicU64,
    /// Requests that joined an identical in-flight computation
    /// instead of planning again.
    pub coalesced: AtomicU64,
    /// Requests rejected with an error (bad instance, infeasible
    /// bandwidth, ...).
    pub errors: AtomicU64,
    /// Requests shed at admission because the bounded queue was full
    /// (answered `"code": "overloaded"` instead of waiting).
    pub requests_shed: AtomicU64,
    /// Exact-tier plans abandoned at a deadline checkpoint and
    /// re-planned greedily (`"downgraded": true` on the wire).
    pub deadline_downgrades: AtomicU64,
    /// Requests whose deadline had already passed by the time their
    /// response was ready (downgrades included).
    pub deadline_misses: AtomicU64,
    /// Jobs currently sitting in the bounded admission queue (gauge:
    /// incremented on enqueue, decremented on dequeue).
    pub queue_depth: AtomicU64,
    /// Cache entries evicted to make room.
    pub evictions: AtomicU64,
    /// Sightings ingested into the profile store (mirrors the store's
    /// own counter; synced on every `observe`).
    pub sightings_ingested: AtomicU64,
    /// Device profiles evicted from the store's capacity bound
    /// (mirrors the store's own counter; synced on every `observe`).
    pub profile_evictions: AtomicU64,
    /// Profiles that served a `plan_devices` request while stale
    /// (staleness weight below ½ — mostly decayed toward uniform).
    pub stale_profiles_served: AtomicU64,
    /// WAL records appended (mirrors the durable store; 0 when the
    /// server runs without `--data-dir`).
    pub wal_appends: AtomicU64,
    /// Fsyncs issued for the WAL.
    pub wal_fsyncs: AtomicU64,
    /// WAL records replayed at startup recovery.
    pub wal_recovered_records: AtomicU64,
    /// Bytes truncated from a torn WAL tail at startup recovery.
    pub wal_truncated_bytes: AtomicU64,
    /// Snapshot checkpoints rotated.
    pub checkpoints: AtomicU64,
    /// Degraded-mode gauge: 1 after a data-disk failure (observes are
    /// refused, planning keeps serving), 0 otherwise.
    pub degraded: AtomicU64,
    /// Times the event-loop server's loops returned from `epoll_wait`
    /// (summed across loops; 0 under `--stdio` or the test harness).
    pub loop_wakeups: AtomicU64,
    /// Connections currently open across all event loops (gauge).
    pub open_connections: AtomicU64,
    /// Connections accepted since startup, across all event loops.
    pub accepted_connections: AtomicU64,
    /// `SO_REUSEPORT` accept skew: the difference between the
    /// busiest and idlest loop's accepted-connection counts (gauge,
    /// recomputed on every accept; 0 with one loop).
    pub accept_balance: AtomicU64,
    /// Planning latency per solver tier.
    pub exact_latency: LatencyHistogram,
    /// Fig. 1 greedy tier latency.
    pub greedy_latency: LatencyHistogram,
    /// Bandwidth-bounded tier latency.
    pub bandwidth_latency: LatencyHistogram,
    /// Signature tier latency.
    pub signature_latency: LatencyHistogram,
}

impl Metrics {
    /// Bumps a counter.
    pub fn inc(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    /// Decrements a gauge, saturating at zero.
    pub fn dec(gauge: &AtomicU64) {
        // A saturating decrement: the gauge is advisory, so a lost
        // race simply under-reports momentarily.
        let _ = gauge.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
            Some(v.saturating_sub(1))
        });
    }

    /// Reads a counter.
    pub fn get(counter: &AtomicU64) -> u64 {
        counter.load(Ordering::Relaxed)
    }

    /// Advisory `retry_after_ms` for a shed request, derived from the
    /// live backlog and the measured drain rate: the time `workers`
    /// threads need to clear `queue_depth` jobs at the mean observed
    /// planning latency (all tiers pooled), clamped to `[10, 2000]`
    /// ms. Before any plan has completed there is no drain rate to
    /// measure, so the caller's static fallback is returned instead.
    pub fn suggested_retry_after_ms(&self, workers: u64, fallback_ms: u64) -> u64 {
        let depth = Self::get(&self.queue_depth).max(1);
        let tiers = [
            &self.exact_latency,
            &self.greedy_latency,
            &self.bandwidth_latency,
            &self.signature_latency,
        ];
        let (count, total) = tiers.iter().fold((0u64, 0u64), |(c, t), h| {
            (c + h.count(), t + h.total_micros())
        });
        if count == 0 {
            return fallback_ms;
        }
        #[allow(clippy::cast_precision_loss)]
        let mean_micros = total as f64 / count as f64;
        #[allow(clippy::cast_precision_loss)]
        let drain_ms = depth as f64 * mean_micros / (workers.max(1) as f64) / 1000.0;
        #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
        let drain_ms = drain_ms.ceil().min(2000.0) as u64;
        drain_ms.clamp(10, 2000)
    }

    /// The latency histogram for one solver tier.
    pub fn tier_latency(&self, tier: crate::planner::Tier) -> &LatencyHistogram {
        match tier {
            crate::planner::Tier::Exact => &self.exact_latency,
            crate::planner::Tier::Greedy => &self.greedy_latency,
            crate::planner::Tier::Bandwidth => &self.bandwidth_latency,
            crate::planner::Tier::Signature => &self.signature_latency,
        }
    }

    /// Full snapshot as a JSON object (the `--metrics-json` /
    /// `{"cmd":"metrics"}` payload).
    pub fn to_json(&self) -> Value {
        Value::object(vec![
            ("requests", Value::from(Self::get(&self.requests))),
            ("cache_hits", Value::from(Self::get(&self.cache_hits))),
            ("cache_misses", Value::from(Self::get(&self.cache_misses))),
            ("coalesced", Value::from(Self::get(&self.coalesced))),
            ("errors", Value::from(Self::get(&self.errors))),
            ("requests_shed", Value::from(Self::get(&self.requests_shed))),
            (
                "deadline_downgrades",
                Value::from(Self::get(&self.deadline_downgrades)),
            ),
            (
                "deadline_misses",
                Value::from(Self::get(&self.deadline_misses)),
            ),
            ("queue_depth", Value::from(Self::get(&self.queue_depth))),
            ("evictions", Value::from(Self::get(&self.evictions))),
            (
                "sightings_ingested",
                Value::from(Self::get(&self.sightings_ingested)),
            ),
            (
                "profile_evictions",
                Value::from(Self::get(&self.profile_evictions)),
            ),
            (
                "stale_profiles_served",
                Value::from(Self::get(&self.stale_profiles_served)),
            ),
            ("wal_appends", Value::from(Self::get(&self.wal_appends))),
            ("wal_fsyncs", Value::from(Self::get(&self.wal_fsyncs))),
            (
                "wal_recovered_records",
                Value::from(Self::get(&self.wal_recovered_records)),
            ),
            (
                "wal_truncated_bytes",
                Value::from(Self::get(&self.wal_truncated_bytes)),
            ),
            ("checkpoints", Value::from(Self::get(&self.checkpoints))),
            ("degraded", Value::from(Self::get(&self.degraded))),
            ("loop_wakeups", Value::from(Self::get(&self.loop_wakeups))),
            (
                "open_connections",
                Value::from(Self::get(&self.open_connections)),
            ),
            (
                "accepted_connections",
                Value::from(Self::get(&self.accepted_connections)),
            ),
            (
                "accept_balance",
                Value::from(Self::get(&self.accept_balance)),
            ),
            (
                "tier_latency",
                Value::object(vec![
                    ("exact", self.exact_latency.to_json()),
                    ("greedy", self.greedy_latency.to_json()),
                    ("bandwidth", self.bandwidth_latency.to_json()),
                    ("signature", self.signature_latency.to_json()),
                ]),
            ),
        ])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_quantiles() {
        let h = LatencyHistogram::default();
        for micros in [0, 1, 2, 3, 10, 100, 1000, 1000, 1000, 100_000] {
            h.record(micros);
        }
        assert_eq!(h.count(), 10);
        assert!(h.quantile_upper_micros(0.5) <= 128);
        assert!(h.quantile_upper_micros(1.0) >= 65_536);
        assert_eq!(LatencyHistogram::default().quantile_upper_micros(0.5), 0);
    }

    #[test]
    fn metrics_json_has_required_fields() {
        let m = Metrics::default();
        Metrics::inc(&m.requests);
        Metrics::inc(&m.cache_hits);
        m.greedy_latency.record(42);
        let json = m.to_json();
        assert_eq!(json.get("requests").and_then(Value::as_u64), Some(1));
        assert_eq!(json.get("cache_hits").and_then(Value::as_u64), Some(1));
        assert_eq!(json.get("cache_misses").and_then(Value::as_u64), Some(0));
        assert_eq!(json.get("coalesced").and_then(Value::as_u64), Some(0));
        assert_eq!(json.get("requests_shed").and_then(Value::as_u64), Some(0));
        assert_eq!(
            json.get("deadline_downgrades").and_then(Value::as_u64),
            Some(0)
        );
        assert_eq!(json.get("queue_depth").and_then(Value::as_u64), Some(0));
        for field in [
            "wal_appends",
            "wal_fsyncs",
            "wal_recovered_records",
            "wal_truncated_bytes",
            "checkpoints",
            "degraded",
        ] {
            assert_eq!(json.get(field).and_then(Value::as_u64), Some(0), "{field}");
        }
        let tiers = json.get("tier_latency").unwrap();
        assert_eq!(
            tiers
                .get("greedy")
                .and_then(|t| t.get("count"))
                .and_then(Value::as_u64),
            Some(1)
        );
        // The dump must serialise cleanly.
        assert!(jsonio::parse(&json.to_string()).is_ok());
    }

    #[test]
    fn gauge_dec_saturates_at_zero() {
        let m = Metrics::default();
        Metrics::dec(&m.queue_depth);
        assert_eq!(Metrics::get(&m.queue_depth), 0);
        Metrics::inc(&m.queue_depth);
        Metrics::inc(&m.queue_depth);
        Metrics::dec(&m.queue_depth);
        assert_eq!(Metrics::get(&m.queue_depth), 1);
    }
}
