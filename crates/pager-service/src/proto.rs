//! JSON-lines wire protocol.
//!
//! One request per line, one response line per request, over TCP or
//! stdin/stdout. Planning request:
//!
//! ```json
//! {"id": 7, "instance": [[0.5, 0.3, 0.2], [0.2, 0.2, 0.6]], "delay": 2,
//!  "variant": "auto", "cache": true, "deadline_ms": 250}
//! ```
//!
//! `instance` also accepts the `textio` text format as a JSON string
//! (`"0.5 0.3 0.2\n1/4 1/4 1/2"` — rows on lines, `#` comments,
//! decimal or `num/den` entries). `variant` is `"auto"` (default),
//! `"exact"`, `"greedy"`, `"bandwidth"` (with `"bandwidth": b`), or
//! `"signature"` (with `"k": k`). `deadline_ms` bounds how long the
//! server may spend (queueing included) before answering; omitted, the
//! server default applies. Unknown fields are ignored, so older
//! servers tolerate newer clients. Response:
//!
//! ```json
//! {"v": 1, "id": 7, "ok": true, "strategy": [[0], [1, 2]], "ep": 2.21,
//!  "tier": "greedy", "downgraded": false, "cached": false,
//!  "coalesced": false, "planning_micros": 41}
//! ```
//!
//! Every response carries the protocol version `"v": 1`.
//! `"downgraded": true` marks a plan whose exact solve was abandoned
//! at its deadline and re-planned greedily. Error responses carry a
//! *stable* `"code"` (`"bad_request"`, `"unsupported"`,
//! `"overloaded"`, `"internal"`) next to the human-readable
//! `"error"`; `"overloaded"` responses add `"retry_after_ms"`:
//!
//! ```json
//! {"v": 1, "id": 7, "ok": false, "code": "overloaded",
//!  "error": "server overloaded, retry after 50 ms",
//!  "retry_after_ms": 50}
//! ```
//!
//! Control lines: `{"cmd": "metrics"}` dumps the metrics registry,
//! `{"cmd": "ping"}` answers `{"ok": true, "pong": true}`, and
//! `{"cmd": "shutdown"}` asks the server to stop accepting
//! connections (it answers `{"ok": true, "stopping": true}` first).
//!
//! Profile ops close the sightings→plans loop:
//!
//! ```json
//! {"cmd": "observe", "cells": 4,
//!  "sightings": [{"device": "a", "cell": 1, "time": 3.5}]}
//! {"cmd": "plan_devices", "id": 9, "devices": ["a", "b"], "delay": 2,
//!  "estimator": "markov", "now": 4.0}
//! {"cmd": "profile_stats"}
//! ```
//!
//! `observe` answers `{"ok": true, "ingested": n, "versions": {...}}`
//! with each device's new profile version. `plan_devices` answers like
//! a plan response plus `"profile_versions"`, `"stale_profiles"` and
//! `"now"`; the versions key the strategy cache, so a profile updated
//! between two identical requests always gets a fresh plan.
//! `estimator` is `"empirical"`, `"recency"` or `"markov"` (default);
//! `now` defaults to the latest ingested sighting time.
//!
//! Cluster ops (`pager-cluster` speaks these between router and
//! nodes): `{"cmd": "node_info"}` reports build, identity,
//! replication state and the metrics registry in one line, and
//! `{"cmd": "replicate", "action": ...}` carries the WAL-shipping
//! sub-protocol — leaders answer `status` / `fetch` / `snapshot`,
//! followers accept `install` / `apply` and answer `cursor`;
//! `promote` flips the failover flag and `probe` checks one device's
//! presence (the harness's zero-loss assertion). Binary payloads
//! (WAL frames, snapshot images) travel hex-encoded, keeping the
//! protocol JSON-lines throughout.

use jsonio::Value;
use pager_core::{Delay, Instance};
use pager_profiles::wal::MAX_DEVICE_BYTES;
use pager_profiles::{ApplyOutcome, CursorStatus, DurableError, Estimator, Sighting, WalExport};
use rational::Ratio;

use crate::error::ServiceError;
use crate::planner::Variant;
use crate::service::{PagerService, PlanSpec};

/// Protocol version stamped on every response line.
pub const PROTOCOL_VERSION: u64 = 1;

/// A parsed request line.
#[derive(Debug, Clone)]
pub enum Request {
    /// Plan a strategy.
    Plan {
        /// Opaque id echoed back in the response.
        id: Value,
        /// The instance to plan for.
        instance: Instance,
        /// What to plan: delay, variant, cache opt-out, deadline.
        spec: PlanSpec,
    },
    /// Ingest a batch of device sightings into the profile store.
    Observe {
        /// Number of cells the sighted area has.
        cells: usize,
        /// The sightings, in order.
        sightings: Vec<Sighting>,
    },
    /// Plan a strategy for named devices out of the profile store.
    PlanDevices {
        /// Opaque id echoed back in the response.
        id: Value,
        /// Device ids to establish the call for.
        devices: Vec<String>,
        /// Which estimator turns profiles into rows.
        estimator: Estimator,
        /// Clock to evaluate distributions at (default: latest
        /// ingested sighting time).
        now: Option<f64>,
        /// What to plan: delay, variant, cache opt-out, deadline.
        spec: PlanSpec,
    },
    /// Dump the profile store's counters.
    ProfileStats,
    /// Dump the metrics registry.
    Metrics,
    /// Report this node's identity, build, and replication state.
    NodeInfo,
    /// One WAL-shipping sub-operation (leader export or follower
    /// apply).
    Replicate(ReplicateAction),
    /// Liveness probe.
    Ping,
    /// Stop the server.
    Shutdown,
}

/// The `replicate` sub-protocol: what one shipping round asks a node
/// to do. Leaders answer the export half, followers the apply half;
/// every node answers both (any node may be either role for some
/// shard).
#[derive(Debug, Clone)]
pub enum ReplicateAction {
    /// Leader: report the current WAL position (generation, offset,
    /// store version).
    Status,
    /// Leader: export whole WAL frames starting at `(generation,
    /// offset)`, at most `max_bytes` of them.
    Fetch {
        /// WAL generation the caller's cursor points into.
        generation: u64,
        /// Byte offset of valid frames already applied.
        offset: u64,
        /// Upper bound on exported frame bytes.
        max_bytes: usize,
    },
    /// Leader: export a full snapshot image plus the WAL position it
    /// covers, for follower bootstrap.
    Snapshot,
    /// Follower: merge a snapshot image and reset the cursor for
    /// `source` to the position it covers.
    Install {
        /// Leader node id the image came from.
        source: String,
        /// WAL generation the image covers.
        generation: u64,
        /// WAL offset the image covers.
        offset: u64,
        /// The snapshot image bytes.
        bytes: Vec<u8>,
    },
    /// Follower: report the cursor for `source`.
    Cursor {
        /// Leader node id the cursor tracks.
        source: String,
    },
    /// Follower: apply shipped WAL frames at the cursor position.
    Apply {
        /// Leader node id the frames came from.
        source: String,
        /// WAL generation the frames belong to.
        generation: u64,
        /// Byte offset the frames start at.
        offset: u64,
        /// Leader-side offset after the chunk; exceeds
        /// `offset + frames.len()` when the pump filtered records the
        /// leader does not own out of the shipment.
        end: u64,
        /// The frame bytes.
        frames: Vec<u8>,
    },
    /// Flip this node's promotion flag (follower takes over a dead
    /// leader's shard).
    Promote {
        /// The new flag value.
        promoted: bool,
    },
    /// Check one device's presence and profile version — the
    /// harness's zero-acked-loss assertion.
    Probe {
        /// Device id to look up.
        device: String,
    },
}

/// Parses one wire line. Unknown fields are ignored for forward
/// compatibility; unknown commands and variants are rejected with
/// [`ServiceError::Unsupported`].
///
/// # Errors
///
/// [`ServiceError::BadRequest`] for malformed JSON or invalid
/// payloads, [`ServiceError::Unsupported`] for commands or variants
/// this server does not know.
pub fn parse_request(line: &str) -> Result<Request, ServiceError> {
    let value = jsonio::parse(line).map_err(|e| ServiceError::BadRequest(e.to_string()))?;
    if let Some(cmd) = value.get("cmd") {
        return match cmd.as_str() {
            Some("metrics") => Ok(Request::Metrics),
            Some("ping") => Ok(Request::Ping),
            Some("shutdown") => Ok(Request::Shutdown),
            Some("observe") => parse_observe(&value).map_err(ServiceError::BadRequest),
            Some("plan_devices") => parse_plan_devices(&value),
            Some("profile_stats") => Ok(Request::ProfileStats),
            Some("node_info") => Ok(Request::NodeInfo),
            Some("replicate") => parse_replicate(&value),
            _ => Err(ServiceError::Unsupported(format!("unknown cmd {cmd}"))),
        };
    }
    let id = value.get("id").cloned().unwrap_or(Value::Null);
    let instance = value
        .get("instance")
        .ok_or_else(|| ServiceError::BadRequest("missing \"instance\"".to_string()))?;
    let instance = parse_instance_payload(instance).map_err(ServiceError::BadRequest)?;
    let spec = parse_spec(&value)?;
    Ok(Request::Plan { id, instance, spec })
}

/// The request fields every planning command shares: `delay`,
/// `variant` (+ its parameters), `cache`, `deadline_ms`. This is the
/// only place the wire constructs a [`PlanSpec`].
fn parse_spec(value: &Value) -> Result<PlanSpec, ServiceError> {
    let delay = Delay::from_json(
        value
            .get("delay")
            .ok_or_else(|| ServiceError::BadRequest("missing \"delay\"".to_string()))?,
    )
    .map_err(ServiceError::BadRequest)?;
    let variant = parse_variant(value)?;
    let cache = match value.get("cache") {
        None => true,
        Some(flag) => flag
            .as_bool()
            .ok_or_else(|| ServiceError::BadRequest("\"cache\" must be a boolean".to_string()))?,
    };
    let mut spec = PlanSpec::new(delay).with_variant(variant).with_cache(cache);
    match value.get("deadline_ms") {
        None | Some(Value::Null) => {}
        Some(ms) => {
            spec = spec.with_deadline_ms(ms.as_u64().ok_or_else(|| {
                ServiceError::BadRequest(
                    "\"deadline_ms\" must be a non-negative integer".to_string(),
                )
            })?);
        }
    }
    Ok(spec)
}

fn parse_observe(value: &Value) -> Result<Request, String> {
    let cells = value
        .get("cells")
        .and_then(Value::as_usize)
        .filter(|&c| c > 0)
        .ok_or_else(|| "\"observe\" needs a positive integer \"cells\"".to_string())?;
    let raw = value
        .get("sightings")
        .and_then(Value::as_array)
        .ok_or_else(|| "\"observe\" needs a \"sightings\" array".to_string())?;
    let mut sightings = Vec::with_capacity(raw.len());
    for (i, s) in raw.iter().enumerate() {
        let device = s
            .get("device")
            .and_then(Value::as_str)
            .ok_or_else(|| format!("sighting {i} needs a string \"device\""))?;
        // Bound device names at the door: the durable store's WAL
        // enforces the same limit, and rejecting here keeps the
        // in-memory and durable configurations behaving identically.
        if device.len() > MAX_DEVICE_BYTES {
            return Err(format!(
                "sighting {i}: device name is {} bytes, over the {MAX_DEVICE_BYTES}-byte limit",
                device.len()
            ));
        }
        let cell = s
            .get("cell")
            .and_then(Value::as_usize)
            .ok_or_else(|| format!("sighting {i} needs an integer \"cell\""))?;
        let time = s
            .get("time")
            .and_then(Value::as_f64)
            .filter(|t| t.is_finite())
            .ok_or_else(|| format!("sighting {i} needs a finite \"time\""))?;
        sightings.push(Sighting {
            device: device.to_string(),
            cell,
            time,
        });
    }
    Ok(Request::Observe { cells, sightings })
}

fn parse_plan_devices(value: &Value) -> Result<Request, ServiceError> {
    let id = value.get("id").cloned().unwrap_or(Value::Null);
    let raw = value
        .get("devices")
        .and_then(Value::as_array)
        .ok_or_else(|| {
            ServiceError::BadRequest("\"plan_devices\" needs a \"devices\" array".to_string())
        })?;
    let mut devices = Vec::with_capacity(raw.len());
    for (i, d) in raw.iter().enumerate() {
        devices.push(
            d.as_str()
                .ok_or_else(|| ServiceError::BadRequest(format!("device {i} must be a string")))?
                .to_string(),
        );
    }
    let estimator = match value.get("estimator") {
        None => Estimator::Markov,
        Some(e) => Estimator::parse(e.as_str().ok_or_else(|| {
            ServiceError::BadRequest("\"estimator\" must be a string".to_string())
        })?)
        .map_err(ServiceError::Unsupported)?,
    };
    let now = match value.get("now") {
        None | Some(Value::Null) => None,
        Some(t) => Some(t.as_f64().filter(|t| t.is_finite()).ok_or_else(|| {
            ServiceError::BadRequest("\"now\" must be a finite number".to_string())
        })?),
    };
    let spec = parse_spec(value)?;
    Ok(Request::PlanDevices {
        id,
        devices,
        estimator,
        now,
        spec,
    })
}

/// Encodes binary payloads for the JSON-lines wire (lowercase hex).
#[must_use]
pub fn to_hex(bytes: &[u8]) -> String {
    let mut out = String::with_capacity(bytes.len() * 2);
    for b in bytes {
        out.push(char::from_digit(u32::from(b >> 4), 16).unwrap_or('0'));
        out.push(char::from_digit(u32::from(b & 0xf), 16).unwrap_or('0'));
    }
    out
}

/// Decodes a hex payload from the wire.
///
/// # Errors
///
/// A description of the first bad digit or an odd length.
pub fn from_hex(text: &str) -> Result<Vec<u8>, String> {
    let digits = text.as_bytes();
    if !digits.len().is_multiple_of(2) {
        return Err(format!("hex payload has odd length {}", digits.len()));
    }
    let mut out = Vec::with_capacity(digits.len() / 2);
    for pair in digits.chunks_exact(2) {
        let hi = (pair[0] as char).to_digit(16);
        let lo = (pair[1] as char).to_digit(16);
        match (hi, lo) {
            (Some(hi), Some(lo)) => {
                // Both digits are in 0..16, so the product fits a byte.
                #[allow(clippy::cast_possible_truncation)]
                out.push(((hi << 4) | lo) as u8);
            }
            _ => {
                return Err(format!(
                    "invalid hex digits {:?}{:?}",
                    pair[0] as char, pair[1] as char
                ))
            }
        }
    }
    Ok(out)
}

fn req_u64(value: &Value, field: &str) -> Result<u64, ServiceError> {
    value.get(field).and_then(Value::as_u64).ok_or_else(|| {
        ServiceError::BadRequest(format!(
            "\"replicate\" needs a non-negative integer {field:?}"
        ))
    })
}

fn req_str(value: &Value, field: &str) -> Result<String, ServiceError> {
    Ok(value
        .get(field)
        .and_then(Value::as_str)
        .ok_or_else(|| ServiceError::BadRequest(format!("\"replicate\" needs a string {field:?}")))?
        .to_string())
}

fn req_hex(value: &Value, field: &str) -> Result<Vec<u8>, ServiceError> {
    from_hex(&req_str(value, field)?)
        .map_err(|e| ServiceError::BadRequest(format!("{field:?}: {e}")))
}

/// Bound on one `fetch`'s exported frame bytes; keeps a single
/// response line (hex doubles the payload) well under the server's
/// input buffer cap.
const MAX_FETCH_BYTES: usize = 4 << 20;

fn parse_replicate(value: &Value) -> Result<Request, ServiceError> {
    let action = value
        .get("action")
        .and_then(Value::as_str)
        .ok_or_else(|| ServiceError::BadRequest("\"replicate\" needs an \"action\"".to_string()))?;
    let action = match action {
        "status" => ReplicateAction::Status,
        "fetch" => ReplicateAction::Fetch {
            generation: req_u64(value, "generation")?,
            offset: req_u64(value, "offset")?,
            max_bytes: value
                .get("max_bytes")
                .and_then(Value::as_usize)
                .unwrap_or(MAX_FETCH_BYTES)
                .min(MAX_FETCH_BYTES),
        },
        "snapshot" => ReplicateAction::Snapshot,
        "install" => ReplicateAction::Install {
            source: req_str(value, "source")?,
            generation: req_u64(value, "generation")?,
            offset: req_u64(value, "offset")?,
            bytes: req_hex(value, "snapshot")?,
        },
        "cursor" => ReplicateAction::Cursor {
            source: req_str(value, "source")?,
        },
        "apply" => {
            let offset = req_u64(value, "offset")?;
            let frames = req_hex(value, "frames")?;
            ReplicateAction::Apply {
                source: req_str(value, "source")?,
                generation: req_u64(value, "generation")?,
                offset,
                end: match value.get("end") {
                    None => offset + frames.len() as u64,
                    Some(_) => req_u64(value, "end")?,
                },
                frames,
            }
        }
        "promote" => ReplicateAction::Promote {
            promoted: value
                .get("promoted")
                .and_then(Value::as_bool)
                .unwrap_or(true),
        },
        "probe" => ReplicateAction::Probe {
            device: req_str(value, "device")?,
        },
        other => {
            return Err(ServiceError::Unsupported(format!(
                "unknown replicate action {other:?}"
            )))
        }
    };
    Ok(Request::Replicate(action))
}

/// Accepts either the JSON rows form or the `textio` string form.
fn parse_instance_payload(payload: &Value) -> Result<Instance, String> {
    match payload {
        Value::Str(text) => parse_textio_instance(text),
        other => Instance::from_json(other),
    }
}

/// `textio`-convention parser: one device per line, whitespace-
/// separated probabilities, `#` comments, decimals or `num/den`
/// fractions (kept in sync with the root crate's `textio` module).
fn parse_textio_instance(text: &str) -> Result<Instance, String> {
    let mut rows = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let body = line.split('#').next().unwrap_or("").trim();
        if body.is_empty() {
            continue;
        }
        let mut row = Vec::new();
        for token in body.split_whitespace() {
            let value: Ratio = token.parse().map_err(|_| {
                format!("line {}: cannot parse {token:?} as a probability", idx + 1)
            })?;
            row.push(value.to_f64());
        }
        rows.push(row);
    }
    if rows.is_empty() {
        return Err("no probability rows found".to_string());
    }
    Instance::from_rows(rows).map_err(|e| e.to_string())
}

fn parse_variant(value: &Value) -> Result<Variant, ServiceError> {
    let name = match value.get("variant") {
        None => return Ok(Variant::Auto),
        Some(v) => v
            .as_str()
            .ok_or_else(|| ServiceError::BadRequest("\"variant\" must be a string".to_string()))?,
    };
    match name {
        "auto" => Ok(Variant::Auto),
        "exact" => Ok(Variant::Exact),
        "greedy" => Ok(Variant::Greedy),
        "bandwidth" => {
            let cap = value
                .get("bandwidth")
                .and_then(Value::as_usize)
                .ok_or_else(|| {
                    ServiceError::BadRequest(
                        "variant \"bandwidth\" needs a positive integer \"bandwidth\"".to_string(),
                    )
                })?;
            Ok(Variant::Bandwidth(cap))
        }
        "signature" => {
            let k = value.get("k").and_then(Value::as_usize).ok_or_else(|| {
                ServiceError::BadRequest(
                    "variant \"signature\" needs a positive integer \"k\"".to_string(),
                )
            })?;
            Ok(Variant::Signature(k))
        }
        other => Err(ServiceError::Unsupported(format!(
            "unknown variant {other:?}"
        ))),
    }
}

/// What handling one line produced.
#[derive(Debug)]
pub struct LineOutcome {
    /// The response line (no trailing newline).
    pub response: String,
    /// Whether the server should stop accepting connections.
    pub shutdown: bool,
}

/// Handles one wire line end to end against a service.
#[must_use]
pub fn handle_line(service: &PagerService, line: &str) -> LineOutcome {
    match parse_request(line) {
        Err(error) => LineOutcome {
            response: error_response(&Value::Null, &error),
            shutdown: false,
        },
        Ok(Request::Ping) => LineOutcome {
            response: ok_response(vec![("pong", Value::Bool(true))]),
            shutdown: false,
        },
        Ok(Request::Metrics) => LineOutcome {
            response: ok_response(vec![("metrics", service.metrics().to_json())]),
            shutdown: false,
        },
        Ok(Request::Shutdown) => LineOutcome {
            response: ok_response(vec![("stopping", Value::Bool(true))]),
            shutdown: true,
        },
        Ok(Request::Observe { cells, sightings }) => match service.observe(cells, &sightings) {
            Err(error) => LineOutcome {
                response: error_response(&Value::Null, &error),
                shutdown: false,
            },
            Ok(versions) => {
                // Last version per device (a device may appear several
                // times in one batch).
                let mut latest: Vec<(String, Value)> = Vec::new();
                for (device, version) in versions.iter() {
                    match latest.iter_mut().find(|(d, _)| d == device) {
                        Some(entry) => entry.1 = Value::from(*version),
                        None => latest.push((device.clone(), Value::from(*version))),
                    }
                }
                LineOutcome {
                    response: ok_response(vec![
                        ("ingested", Value::from(versions.len())),
                        ("versions", Value::Object(latest)),
                    ]),
                    shutdown: false,
                }
            }
        },
        Ok(Request::ProfileStats) => {
            let stats = service.profiles().stats();
            LineOutcome {
                response: ok_response(vec![(
                    "profiles",
                    Value::object(vec![
                        ("devices", Value::from(stats.devices)),
                        ("sightings", Value::from(stats.sightings)),
                        ("evictions", Value::from(stats.evictions)),
                        ("version", Value::from(stats.version)),
                        (
                            "latest_time",
                            match service.profiles().latest_time() {
                                Some(t) => Value::Float(t),
                                None => Value::Null,
                            },
                        ),
                        ("degraded", Value::Bool(service.degraded())),
                    ]),
                )]),
                shutdown: false,
            }
        }
        Ok(Request::NodeInfo) => LineOutcome {
            response: ok_response(vec![("node", node_info(service))]),
            shutdown: false,
        },
        Ok(Request::Replicate(action)) => LineOutcome {
            response: match handle_replicate(service, &action) {
                Ok(fields) => ok_response(fields),
                Err(error) => error_response(&Value::Null, &error),
            },
            shutdown: false,
        },
        Ok(Request::PlanDevices {
            id,
            devices,
            estimator,
            now,
            spec,
        }) => {
            let refs: Vec<&str> = devices.iter().map(String::as_str).collect();
            plan_devices_line(
                id,
                estimator,
                service.plan_devices(&refs, estimator, now, spec),
            )
        }
        Ok(Request::Plan { id, instance, spec }) => plan_line(id, service.plan(&instance, spec)),
    }
}

/// Handles one wire line without ever parking the calling thread on a
/// worker-pool result — the event-loop server's entry point.
///
/// Returns `Some(outcome)` when the line was handled synchronously
/// (control commands, observes, cache hits, admission failures);
/// `complete` is then dropped without firing. Returns `None` when the
/// request went to the worker pool; `complete` then fires exactly
/// once, on a worker thread, with the outcome. The callback is
/// expected to hand the outcome back to the connection's owning event
/// loop (it must not block).
pub fn handle_line_async(
    service: &PagerService,
    line: &str,
    complete: Box<dyn FnOnce(LineOutcome) + Send>,
) -> Option<LineOutcome> {
    match parse_request(line) {
        Ok(Request::Plan { id, instance, spec }) => {
            let callback_id = id.clone();
            let result = service.plan_async(
                &instance,
                spec,
                Box::new(move |result| complete(plan_line(callback_id, result))),
            )?;
            Some(plan_line(id, result))
        }
        Ok(Request::PlanDevices {
            id,
            devices,
            estimator,
            now,
            spec,
        }) => {
            let refs: Vec<&str> = devices.iter().map(String::as_str).collect();
            let callback_id = id.clone();
            let result = service.plan_devices_async(
                &refs,
                estimator,
                now,
                spec,
                Box::new(move |result| complete(plan_devices_line(callback_id, estimator, result))),
            )?;
            Some(plan_devices_line(id, estimator, result))
        }
        // Everything else — control commands, observes, parse errors —
        // is synchronous by nature; route it through the blocking
        // handler (which never reaches a pool recv for these).
        _ => Some(handle_line(service, line)),
    }
}

/// Assembles the `node_info` payload: build, identity, replication
/// state and the full metrics registry in one object, so the router's
/// heartbeat and the cluster harness each need exactly one round trip
/// per node.
fn node_info(service: &PagerService) -> Value {
    let stats = service.profiles().stats();
    Value::object(vec![
        ("build", Value::from(env!("CARGO_PKG_VERSION"))),
        (
            "node_id",
            match service.node_id() {
                Some(id) => Value::from(id),
                None => Value::Null,
            },
        ),
        ("promoted", Value::Bool(service.promoted())),
        ("degraded", Value::Bool(service.degraded())),
        ("durable", Value::Bool(service.durable().is_some())),
        (
            "generation",
            match service.durable() {
                Some(durable) => Value::from(durable.generation()),
                None => Value::Null,
            },
        ),
        ("store_version", Value::from(stats.version)),
        ("devices", Value::from(stats.devices)),
        ("metrics", service.metrics().to_json()),
    ])
}

fn durable_error(error: DurableError) -> ServiceError {
    match error {
        DurableError::Rejected(message) => ServiceError::BadRequest(message),
        DurableError::Degraded(message) => ServiceError::Degraded(message),
    }
}

/// Executes one `replicate` sub-action. Export actions need the
/// durable store, apply actions the replica endpoint; a node running
/// without durability answers `unsupported` (except `promote` and
/// `probe`, which only touch in-memory state).
fn handle_replicate(
    service: &PagerService,
    action: &ReplicateAction,
) -> Result<Vec<(&'static str, Value)>, ServiceError> {
    let durable = || {
        service.durable().ok_or_else(|| {
            ServiceError::Unsupported("this node runs without durability".to_string())
        })
    };
    let replica = || {
        service.replica().ok_or_else(|| {
            ServiceError::Unsupported("this node runs without durability".to_string())
        })
    };
    match action {
        ReplicateAction::Status => {
            let position = durable()?.wal_position();
            Ok(vec![
                ("generation", Value::from(position.generation)),
                ("offset", Value::from(position.offset)),
                ("store_version", Value::from(position.store_version)),
            ])
        }
        ReplicateAction::Fetch {
            generation,
            offset,
            max_bytes,
        } => match durable()?
            .export_wal(*generation, *offset, *max_bytes)
            .map_err(durable_error)?
        {
            WalExport::Bootstrap { generation } => Ok(vec![
                ("bootstrap", Value::Bool(true)),
                ("generation", Value::from(generation)),
            ]),
            WalExport::Frames { bytes, end } => Ok(vec![
                ("frames", Value::Str(to_hex(&bytes))),
                ("end", Value::from(end)),
            ]),
        },
        ReplicateAction::Snapshot => {
            let snap = durable()?.export_snapshot();
            Ok(vec![
                ("generation", Value::from(snap.generation)),
                ("offset", Value::from(snap.offset)),
                ("store_version", Value::from(snap.store_version)),
                ("snapshot", Value::Str(to_hex(&snap.bytes))),
            ])
        }
        ReplicateAction::Install {
            source,
            generation,
            offset,
            bytes,
        } => {
            let merged = replica()?
                .install_snapshot(source, *generation, *offset, bytes)
                .map_err(durable_error)?;
            Ok(vec![("merged", Value::from(merged))])
        }
        ReplicateAction::Cursor { source } => {
            let status = replica()?.cursor(source);
            Ok(cursor_fields(&status))
        }
        ReplicateAction::Apply {
            source,
            generation,
            offset,
            end,
            frames,
        } => match replica()?
            .apply_chunk(source, *generation, *offset, *end, frames)
            .map_err(durable_error)?
        {
            ApplyOutcome::Applied { records, offset } => Ok(vec![
                ("applied", Value::from(records)),
                ("offset", Value::from(offset)),
            ]),
            ApplyOutcome::Conflict { status } => {
                let mut fields = vec![("conflict", Value::Bool(true))];
                fields.extend(cursor_fields(&status));
                Ok(fields)
            }
        },
        ReplicateAction::Promote { promoted } => {
            service.set_promoted(*promoted);
            Ok(vec![("promoted", Value::Bool(*promoted))])
        }
        ReplicateAction::Probe { device } => {
            let version = service.profiles().version(device);
            Ok(vec![
                ("present", Value::Bool(version.is_some())),
                (
                    "version",
                    match version {
                        Some(v) => Value::from(v),
                        None => Value::Null,
                    },
                ),
            ])
        }
    }
}

fn cursor_fields(status: &CursorStatus) -> Vec<(&'static str, Value)> {
    vec![
        ("generation", Value::from(status.generation)),
        ("offset", Value::from(status.offset)),
        ("valid", Value::Bool(status.valid)),
    ]
}

/// Formats a plan result (success or error) as its response line.
fn plan_line(id: Value, result: Result<crate::service::PlanResponse, ServiceError>) -> LineOutcome {
    match result {
        Err(error) => LineOutcome {
            response: error_response(&id, &error),
            shutdown: false,
        },
        Ok(response) => LineOutcome {
            response: Value::object(plan_fields(id, &response)).to_string(),
            shutdown: false,
        },
    }
}

/// Formats a `plan_devices` result as its response line.
fn plan_devices_line(
    id: Value,
    estimator: Estimator,
    result: Result<crate::service::DevicePlanResponse, ServiceError>,
) -> LineOutcome {
    match result {
        Err(error) => LineOutcome {
            response: error_response(&id, &error),
            shutdown: false,
        },
        Ok(served) => {
            let mut fields = plan_fields(id, &served.response);
            fields.extend([
                ("estimator", Value::from(estimator.name())),
                ("now", Value::Float(served.now)),
                (
                    "profile_versions",
                    Value::Array(served.versions.iter().map(|&v| Value::from(v)).collect()),
                ),
                ("stale_profiles", Value::from(served.stale_profiles)),
            ]);
            LineOutcome {
                response: Value::object(fields).to_string(),
                shutdown: false,
            }
        }
    }
}

/// The response fields shared by `plan` and `plan_devices` answers.
fn plan_fields(id: Value, response: &crate::service::PlanResponse) -> Vec<(&'static str, Value)> {
    vec![
        ("v", Value::from(PROTOCOL_VERSION)),
        ("id", id),
        ("ok", Value::Bool(true)),
        ("strategy", response.plan.strategy.to_json()),
        ("ep", Value::Float(response.plan.expected_paging)),
        ("tier", Value::from(response.plan.tier.name())),
        ("downgraded", Value::Bool(response.plan.downgraded)),
        ("cached", Value::Bool(response.cached)),
        ("coalesced", Value::Bool(response.coalesced)),
        (
            "planning_micros",
            Value::from(response.plan.planning_micros),
        ),
    ]
}

/// A versioned `{"v": 1, "ok": true, ...}` response line.
fn ok_response(fields: Vec<(&'static str, Value)>) -> String {
    let mut all = vec![
        ("v", Value::from(PROTOCOL_VERSION)),
        ("ok", Value::Bool(true)),
    ];
    all.extend(fields);
    Value::object(all).to_string()
}

fn error_response(id: &Value, error: &ServiceError) -> String {
    let mut fields = vec![
        ("v", Value::from(PROTOCOL_VERSION)),
        ("id", id.clone()),
        ("ok", Value::Bool(false)),
        ("code", Value::from(error.code())),
        ("error", Value::from(error.message().as_str())),
    ];
    if let ServiceError::Overloaded { retry_after_ms } = error {
        fields.push(("retry_after_ms", Value::from(*retry_after_ms)));
    }
    Value::object(fields).to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;

    fn service() -> PagerService {
        PagerService::new(ServiceConfig {
            workers: 2,
            capacity: 64,
            ..ServiceConfig::default()
        })
    }

    #[test]
    fn plan_request_round_trip() {
        let svc = service();
        let line = r#"{"id": 7, "instance": [[0.5, 0.3, 0.2]], "delay": 2}"#;
        let out = handle_line(&svc, line);
        assert!(!out.shutdown);
        let v = jsonio::parse(&out.response).unwrap();
        assert_eq!(v.get("id").and_then(Value::as_i64), Some(7));
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("cached").and_then(Value::as_bool), Some(false));
        assert!(v.get("ep").and_then(Value::as_f64).unwrap() > 0.0);
        // Strategy covers all three cells.
        let strategy = v.get("strategy").and_then(Value::as_array).unwrap();
        let total: usize = strategy.iter().map(|g| g.as_array().unwrap().len()).sum();
        assert_eq!(total, 3);
        // Identical follow-up is served from cache.
        let again = handle_line(&svc, line);
        let v2 = jsonio::parse(&again.response).unwrap();
        assert_eq!(v2.get("cached").and_then(Value::as_bool), Some(true));
        assert_eq!(v2.get("strategy"), v.get("strategy"));
    }

    #[test]
    fn textio_instances_are_accepted() {
        let svc = service();
        let line = r##"{"id": "t", "instance": "# demo\n0.5 0.5\n1/4 3/4", "delay": 2}"##;
        let v = jsonio::parse(&handle_line(&svc, line).response).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{v}");
        assert_eq!(v.get("id").and_then(Value::as_str), Some("t"));
    }

    #[test]
    fn variants_parse_and_validate() {
        let svc = service();
        let bw = r#"{"instance": [[0.25,0.25,0.25,0.25]], "delay": 2, "variant": "bandwidth", "bandwidth": 2}"#;
        let v = jsonio::parse(&handle_line(&svc, bw).response).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{v}");
        assert_eq!(v.get("tier").and_then(Value::as_str), Some("bandwidth"));
        let missing = r#"{"instance": [[1.0]], "delay": 1, "variant": "bandwidth"}"#;
        let v = jsonio::parse(&handle_line(&svc, missing).response).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
        let unknown = r#"{"instance": [[1.0]], "delay": 1, "variant": "psychic"}"#;
        let v = jsonio::parse(&handle_line(&svc, unknown).response).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
    }

    #[test]
    fn malformed_lines_get_error_responses() {
        let svc = service();
        for bad in [
            "not json",
            "{}",
            r#"{"instance": [[0.5, 0.6]], "delay": 2}"#,
            r#"{"instance": [[0.5, 0.5]], "delay": 0}"#,
            r#"{"instance": [[0.5, 0.5]]}"#,
            r#"{"cmd": "dance"}"#,
            r#"{"instance": [[0.5, 0.5]], "delay": 1, "deadline_ms": "soon"}"#,
        ] {
            let out = handle_line(&svc, bad);
            let v = jsonio::parse(&out.response).unwrap();
            assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false), "{bad}");
            assert!(v.get("error").is_some(), "{bad}");
            assert!(v.get("code").is_some(), "{bad}");
        }
    }

    #[test]
    fn responses_carry_version_and_stable_codes() {
        let svc = service();
        // Every response line — success or error — is versioned.
        for line in [
            r#"{"cmd": "ping"}"#,
            r#"{"cmd": "metrics"}"#,
            r#"{"instance": [[0.5, 0.5]], "delay": 1}"#,
            "not json",
        ] {
            let v = jsonio::parse(&handle_line(&svc, line).response).unwrap();
            assert_eq!(v.get("v").and_then(Value::as_u64), Some(1), "{line}");
        }
        // Codes distinguish the client's fault from this server's
        // limits.
        let bad = handle_line(&svc, r#"{"instance": [[0.9, 0.2]], "delay": 1}"#);
        let v = jsonio::parse(&bad.response).unwrap();
        assert_eq!(v.get("code").and_then(Value::as_str), Some("bad_request"));
        let unsupported = handle_line(
            &svc,
            r#"{"instance": [[0.5, 0.5]], "delay": 1, "variant": "psychic"}"#,
        );
        let v = jsonio::parse(&unsupported.response).unwrap();
        assert_eq!(v.get("code").and_then(Value::as_str), Some("unsupported"));
        let unknown_cmd = handle_line(&svc, r#"{"cmd": "dance"}"#);
        let v = jsonio::parse(&unknown_cmd.response).unwrap();
        assert_eq!(v.get("code").and_then(Value::as_str), Some("unsupported"));
    }

    #[test]
    fn oversize_device_names_are_rejected_at_parse() {
        let svc = service();
        let giant = "d".repeat(MAX_DEVICE_BYTES + 1);
        let line = format!(
            r#"{{"cmd": "observe", "cells": 4,
                "sightings": [{{"device": "ok", "cell": 0, "time": 1.0}},
                              {{"device": "{giant}", "cell": 1, "time": 2.0}}]}}"#
        );
        let v = jsonio::parse(&handle_line(&svc, &line).response).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
        assert_eq!(v.get("code").and_then(Value::as_str), Some("bad_request"));
        // Rejected at parse: nothing from the batch was ingested.
        assert_eq!(svc.profiles().stats().devices, 0);
        // At the limit is accepted.
        let at_limit = "d".repeat(MAX_DEVICE_BYTES);
        let line = format!(
            r#"{{"cmd": "observe", "cells": 4,
                "sightings": [{{"device": "{at_limit}", "cell": 0, "time": 1.0}}]}}"#
        );
        let v = jsonio::parse(&handle_line(&svc, &line).response).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{v}");
    }

    #[test]
    fn unknown_fields_are_tolerated() {
        // A newer client may send fields this server has never heard
        // of; they must be ignored, not rejected.
        let svc = service();
        let line = r#"{"id": 3, "instance": [[0.5, 0.5]], "delay": 1,
                       "future_knob": {"x": 1}, "priority": "high"}"#;
        let v = jsonio::parse(&handle_line(&svc, line).response).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{v}");
        assert_eq!(v.get("id").and_then(Value::as_i64), Some(3));
        assert_eq!(v.get("downgraded").and_then(Value::as_bool), Some(false));
    }

    #[test]
    fn deadline_ms_is_parsed_into_the_spec() {
        let line = r#"{"instance": [[0.5, 0.5]], "delay": 1, "deadline_ms": 250}"#;
        match parse_request(line).unwrap() {
            Request::Plan { spec, .. } => assert_eq!(spec.deadline_ms(), Some(250)),
            other => panic!("expected a plan request, got {other:?}"),
        }
        // Omitted: defer to the server default.
        let line = r#"{"instance": [[0.5, 0.5]], "delay": 1}"#;
        match parse_request(line).unwrap() {
            Request::Plan { spec, .. } => assert_eq!(spec.deadline_ms(), None),
            other => panic!("expected a plan request, got {other:?}"),
        }
    }

    #[test]
    fn observe_and_plan_devices_round_trip() {
        let svc = service();
        // Ingest a short history for two devices.
        for t in 0..25 {
            let line = format!(
                r#"{{"cmd": "observe", "cells": 3, "sightings": [
                    {{"device": "a", "cell": {}, "time": {t}.0}},
                    {{"device": "b", "cell": 1, "time": {t}.0}}]}}"#,
                t % 3
            );
            let v = jsonio::parse(&handle_line(&svc, &line).response).unwrap();
            assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{v}");
            assert_eq!(v.get("ingested").and_then(Value::as_u64), Some(2));
        }
        // Stats reflect the ingest.
        let stats = handle_line(&svc, r#"{"cmd": "profile_stats"}"#);
        let v = jsonio::parse(&stats.response).unwrap();
        let profiles = v.get("profiles").unwrap();
        assert_eq!(profiles.get("devices").and_then(Value::as_u64), Some(2));
        assert_eq!(profiles.get("sightings").and_then(Value::as_u64), Some(50));
        assert_eq!(
            profiles.get("latest_time").and_then(Value::as_f64),
            Some(24.0)
        );
        // Plan for the named devices.
        let line = r#"{"cmd": "plan_devices", "id": 5, "devices": ["a", "b"], "delay": 2, "estimator": "empirical"}"#;
        let v = jsonio::parse(&handle_line(&svc, line).response).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{v}");
        assert_eq!(v.get("id").and_then(Value::as_i64), Some(5));
        assert_eq!(
            v.get("estimator").and_then(Value::as_str),
            Some("empirical")
        );
        assert_eq!(v.get("now").and_then(Value::as_f64), Some(24.0));
        let versions = v.get("profile_versions").and_then(Value::as_array).unwrap();
        assert_eq!(versions.len(), 2);
        assert_eq!(v.get("stale_profiles").and_then(Value::as_u64), Some(0));
        // Identical request hits the cache; an observe in between
        // bumps a version and forces a fresh plan.
        let v2 = jsonio::parse(&handle_line(&svc, line).response).unwrap();
        assert_eq!(v2.get("cached").and_then(Value::as_bool), Some(true));
        let bump = r#"{"cmd": "observe", "cells": 3, "sightings": [{"device": "a", "cell": 2, "time": 30.0}]}"#;
        assert!(handle_line(&svc, bump).response.contains("true"));
        let v3 = jsonio::parse(&handle_line(&svc, line).response).unwrap();
        assert_eq!(v3.get("cached").and_then(Value::as_bool), Some(false));
    }

    #[test]
    fn profile_ops_validate() {
        let svc = service();
        for bad in [
            r#"{"cmd": "observe"}"#,
            r#"{"cmd": "observe", "cells": 0, "sightings": []}"#,
            r#"{"cmd": "observe", "cells": 3, "sightings": [{"device": "a"}]}"#,
            r#"{"cmd": "observe", "cells": 3, "sightings": [{"device": "a", "cell": 9, "time": 0.0}]}"#,
            r#"{"cmd": "plan_devices", "devices": ["nobody"], "delay": 2}"#,
            r#"{"cmd": "plan_devices", "devices": [], "delay": 2}"#,
            r#"{"cmd": "plan_devices", "devices": ["a"], "delay": 2, "estimator": "psychic"}"#,
        ] {
            let v = jsonio::parse(&handle_line(&svc, bad).response).unwrap();
            assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false), "{bad}");
        }
    }

    fn durable_service(io: &std::sync::Arc<pager_profiles::io::MemIo>) -> PagerService {
        use crate::service::DurabilityOptions;
        use pager_profiles::io::StorageIo;
        let storage: std::sync::Arc<dyn StorageIo> = std::sync::Arc::clone(io) as _;
        PagerService::new(ServiceConfig {
            workers: 2,
            capacity: 64,
            node_id: Some("node-a".to_string()),
            durability: Some(DurabilityOptions {
                data_dir: "/data".into(),
                fsync: pager_profiles::FsyncPolicy::Always,
                checkpoint_every: 0,
                io: Some(storage),
            }),
            ..ServiceConfig::default()
        })
    }

    #[test]
    fn hex_round_trips() {
        for bytes in [
            vec![],
            vec![0u8],
            vec![0xde, 0xad, 0xbe, 0xef],
            (0..=255).collect(),
        ] {
            assert_eq!(from_hex(&to_hex(&bytes)).unwrap(), bytes);
        }
        assert!(from_hex("abc").is_err(), "odd length");
        assert!(from_hex("zz").is_err(), "bad digit");
    }

    #[test]
    fn node_info_reports_identity_and_replication_state() {
        let io = std::sync::Arc::new(pager_profiles::io::MemIo::new());
        let svc = durable_service(&io);
        let v = jsonio::parse(&handle_line(&svc, r#"{"cmd": "node_info"}"#).response).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{v}");
        let node = v.get("node").unwrap();
        assert_eq!(node.get("node_id").and_then(Value::as_str), Some("node-a"));
        assert_eq!(node.get("promoted").and_then(Value::as_bool), Some(false));
        assert_eq!(node.get("degraded").and_then(Value::as_bool), Some(false));
        assert_eq!(node.get("durable").and_then(Value::as_bool), Some(true));
        assert_eq!(
            node.get("build").and_then(Value::as_str),
            Some(env!("CARGO_PKG_VERSION"))
        );
        assert!(node.get("generation").and_then(Value::as_u64).is_some());
        assert!(node.get("metrics").is_some());
        // Promote flips the reported flag.
        let p = handle_line(&svc, r#"{"cmd": "replicate", "action": "promote"}"#);
        assert!(p.response.contains("true"));
        let v = jsonio::parse(&handle_line(&svc, r#"{"cmd": "node_info"}"#).response).unwrap();
        assert_eq!(
            v.get("node")
                .unwrap()
                .get("promoted")
                .and_then(Value::as_bool),
            Some(true)
        );
    }

    #[test]
    fn replicate_ships_leader_state_to_a_follower_over_the_wire() {
        let leader_io = std::sync::Arc::new(pager_profiles::io::MemIo::new());
        let follower_io = std::sync::Arc::new(pager_profiles::io::MemIo::new());
        let leader = durable_service(&leader_io);
        let follower = durable_service(&follower_io);
        // Ingest on the leader.
        let observe = r#"{"cmd": "observe", "cells": 4, "sightings": [
            {"device": "a", "cell": 1, "time": 1.0},
            {"device": "b", "cell": 2, "time": 2.0}]}"#;
        let v = jsonio::parse(&handle_line(&leader, observe).response).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{v}");
        // Bootstrap: snapshot export → install.
        let snap = jsonio::parse(
            &handle_line(&leader, r#"{"cmd": "replicate", "action": "snapshot"}"#).response,
        )
        .unwrap();
        assert_eq!(
            snap.get("ok").and_then(Value::as_bool),
            Some(true),
            "{snap}"
        );
        let install = format!(
            r#"{{"cmd": "replicate", "action": "install", "source": "node-a",
                "generation": {}, "offset": {}, "snapshot": "{}"}}"#,
            snap.get("generation").and_then(Value::as_u64).unwrap(),
            snap.get("offset").and_then(Value::as_u64).unwrap(),
            snap.get("snapshot").and_then(Value::as_str).unwrap(),
        );
        let v = jsonio::parse(&handle_line(&follower, &install).response).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{v}");
        assert_eq!(v.get("merged").and_then(Value::as_u64), Some(2));
        // Leader moves on; follower catches up over fetch/apply.
        let more = r#"{"cmd": "observe", "cells": 4, "sightings": [
            {"device": "c", "cell": 3, "time": 3.0}]}"#;
        assert!(handle_line(&leader, more).response.contains("true"));
        let cursor = jsonio::parse(
            &handle_line(
                &follower,
                r#"{"cmd": "replicate", "action": "cursor", "source": "node-a"}"#,
            )
            .response,
        )
        .unwrap();
        assert_eq!(cursor.get("valid").and_then(Value::as_bool), Some(true));
        let (generation, offset) = (
            cursor.get("generation").and_then(Value::as_u64).unwrap(),
            cursor.get("offset").and_then(Value::as_u64).unwrap(),
        );
        let fetch = format!(
            r#"{{"cmd": "replicate", "action": "fetch", "generation": {generation},
                "offset": {offset}, "max_bytes": 65536}}"#
        );
        let frames = jsonio::parse(&handle_line(&leader, &fetch).response).unwrap();
        let payload = frames.get("frames").and_then(Value::as_str).unwrap();
        assert!(!payload.is_empty());
        let apply = format!(
            r#"{{"cmd": "replicate", "action": "apply", "source": "node-a",
                "generation": {generation}, "offset": {offset}, "frames": "{payload}"}}"#
        );
        let v = jsonio::parse(&handle_line(&follower, &apply).response).unwrap();
        assert_eq!(v.get("applied").and_then(Value::as_u64), Some(1), "{v}");
        // The probe op sees every shipped device on the follower.
        for device in ["a", "b", "c"] {
            let probe =
                format!(r#"{{"cmd": "replicate", "action": "probe", "device": "{device}"}}"#);
            let v = jsonio::parse(&handle_line(&follower, &probe).response).unwrap();
            assert_eq!(
                v.get("present").and_then(Value::as_bool),
                Some(true),
                "device {device} missing on follower"
            );
        }
        // Byte-identical stores after catch-up.
        assert_eq!(
            leader.profiles().snapshot_bytes(),
            follower.profiles().snapshot_bytes()
        );
    }

    #[test]
    fn replicate_without_durability_is_unsupported() {
        let svc = service();
        for line in [
            r#"{"cmd": "replicate", "action": "status"}"#,
            r#"{"cmd": "replicate", "action": "snapshot"}"#,
            r#"{"cmd": "replicate", "action": "cursor", "source": "x"}"#,
        ] {
            let v = jsonio::parse(&handle_line(&svc, line).response).unwrap();
            assert_eq!(v.get("code").and_then(Value::as_str), Some("unsupported"));
        }
        // Probe and promote only touch in-memory state: fine anywhere.
        let v = jsonio::parse(
            &handle_line(
                &svc,
                r#"{"cmd": "replicate", "action": "probe", "device": "x"}"#,
            )
            .response,
        )
        .unwrap();
        assert_eq!(v.get("present").and_then(Value::as_bool), Some(false));
        // Malformed replicate lines get bad_request, unknown actions
        // unsupported.
        let v = jsonio::parse(
            &handle_line(&svc, r#"{"cmd": "replicate", "action": "fetch"}"#).response,
        )
        .unwrap();
        assert_eq!(v.get("code").and_then(Value::as_str), Some("bad_request"));
        let v =
            jsonio::parse(&handle_line(&svc, r#"{"cmd": "replicate", "action": "warp"}"#).response)
                .unwrap();
        assert_eq!(v.get("code").and_then(Value::as_str), Some("unsupported"));
    }

    #[test]
    fn control_lines() {
        let svc = service();
        let ping = handle_line(&svc, r#"{"cmd": "ping"}"#);
        assert!(ping.response.contains("pong"));
        let _ = handle_line(&svc, r#"{"instance": [[0.5, 0.5]], "delay": 1}"#);
        let metrics = handle_line(&svc, r#"{"cmd": "metrics"}"#);
        let v = jsonio::parse(&metrics.response).unwrap();
        assert_eq!(
            v.get("metrics")
                .and_then(|m| m.get("requests"))
                .and_then(Value::as_u64),
            Some(1)
        );
        let stop = handle_line(&svc, r#"{"cmd": "shutdown"}"#);
        assert!(stop.shutdown);
    }
}
