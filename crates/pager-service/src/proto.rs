//! JSON-lines wire protocol.
//!
//! One request per line, one response line per request, over TCP or
//! stdin/stdout. Planning request:
//!
//! ```json
//! {"id": 7, "instance": [[0.5, 0.3, 0.2], [0.2, 0.2, 0.6]], "delay": 2,
//!  "variant": "auto", "cache": true}
//! ```
//!
//! `instance` also accepts the `textio` text format as a JSON string
//! (`"0.5 0.3 0.2\n1/4 1/4 1/2"` — rows on lines, `#` comments,
//! decimal or `num/den` entries). `variant` is `"auto"` (default),
//! `"exact"`, `"greedy"`, `"bandwidth"` (with `"bandwidth": b`), or
//! `"signature"` (with `"k": k`). Response:
//!
//! ```json
//! {"id": 7, "ok": true, "strategy": [[0], [1, 2]], "ep": 2.21,
//!  "tier": "greedy", "cached": false, "coalesced": false,
//!  "planning_micros": 41}
//! ```
//!
//! Control lines: `{"cmd": "metrics"}` dumps the metrics registry,
//! `{"cmd": "ping"}` answers `{"ok": true, "pong": true}`, and
//! `{"cmd": "shutdown"}` asks the server to stop accepting
//! connections (it answers `{"ok": true, "stopping": true}` first).

use jsonio::Value;
use pager_core::{Delay, Instance};
use rational::Ratio;

use crate::planner::Variant;
use crate::service::{PagerService, PlanOptions};

/// A parsed request line.
#[derive(Debug, Clone)]
pub enum Request {
    /// Plan a strategy.
    Plan {
        /// Opaque id echoed back in the response.
        id: Value,
        /// The instance to plan for.
        instance: Instance,
        /// Maximum paging rounds.
        delay: Delay,
        /// Per-request options (variant + cache opt-out).
        options: PlanOptions,
    },
    /// Dump the metrics registry.
    Metrics,
    /// Liveness probe.
    Ping,
    /// Stop the server.
    Shutdown,
}

/// Parses one wire line.
///
/// # Errors
///
/// A human-readable message for malformed JSON, unknown commands or
/// invalid payloads (the message ends up in the error response).
pub fn parse_request(line: &str) -> Result<Request, String> {
    let value = jsonio::parse(line).map_err(|e| e.to_string())?;
    if let Some(cmd) = value.get("cmd") {
        return match cmd.as_str() {
            Some("metrics") => Ok(Request::Metrics),
            Some("ping") => Ok(Request::Ping),
            Some("shutdown") => Ok(Request::Shutdown),
            _ => Err(format!("unknown cmd {cmd}")),
        };
    }
    let id = value.get("id").cloned().unwrap_or(Value::Null);
    let instance = value
        .get("instance")
        .ok_or_else(|| "missing \"instance\"".to_string())?;
    let instance = parse_instance_payload(instance)?;
    let delay = Delay::from_json(
        value
            .get("delay")
            .ok_or_else(|| "missing \"delay\"".to_string())?,
    )?;
    let variant = parse_variant(&value)?;
    let cache = match value.get("cache") {
        None => true,
        Some(flag) => flag
            .as_bool()
            .ok_or_else(|| "\"cache\" must be a boolean".to_string())?,
    };
    Ok(Request::Plan {
        id,
        instance,
        delay,
        options: PlanOptions { variant, cache },
    })
}

/// Accepts either the JSON rows form or the `textio` string form.
fn parse_instance_payload(payload: &Value) -> Result<Instance, String> {
    match payload {
        Value::Str(text) => parse_textio_instance(text),
        other => Instance::from_json(other),
    }
}

/// `textio`-convention parser: one device per line, whitespace-
/// separated probabilities, `#` comments, decimals or `num/den`
/// fractions (kept in sync with the root crate's `textio` module).
fn parse_textio_instance(text: &str) -> Result<Instance, String> {
    let mut rows = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let body = line.split('#').next().unwrap_or("").trim();
        if body.is_empty() {
            continue;
        }
        let mut row = Vec::new();
        for token in body.split_whitespace() {
            let value: Ratio = token.parse().map_err(|_| {
                format!("line {}: cannot parse {token:?} as a probability", idx + 1)
            })?;
            row.push(value.to_f64());
        }
        rows.push(row);
    }
    if rows.is_empty() {
        return Err("no probability rows found".to_string());
    }
    Instance::from_rows(rows).map_err(|e| e.to_string())
}

fn parse_variant(value: &Value) -> Result<Variant, String> {
    let name = match value.get("variant") {
        None => return Ok(Variant::Auto),
        Some(v) => v
            .as_str()
            .ok_or_else(|| "\"variant\" must be a string".to_string())?,
    };
    match name {
        "auto" => Ok(Variant::Auto),
        "exact" => Ok(Variant::Exact),
        "greedy" => Ok(Variant::Greedy),
        "bandwidth" => {
            let cap = value
                .get("bandwidth")
                .and_then(Value::as_usize)
                .ok_or_else(|| {
                    "variant \"bandwidth\" needs a positive integer \"bandwidth\"".to_string()
                })?;
            Ok(Variant::Bandwidth(cap))
        }
        "signature" => {
            let k = value.get("k").and_then(Value::as_usize).ok_or_else(|| {
                "variant \"signature\" needs a positive integer \"k\"".to_string()
            })?;
            Ok(Variant::Signature(k))
        }
        other => Err(format!("unknown variant {other:?}")),
    }
}

/// What handling one line produced.
#[derive(Debug)]
pub struct LineOutcome {
    /// The response line (no trailing newline).
    pub response: String,
    /// Whether the server should stop accepting connections.
    pub shutdown: bool,
}

/// Handles one wire line end to end against a service.
#[must_use]
pub fn handle_line(service: &PagerService, line: &str) -> LineOutcome {
    match parse_request(line) {
        Err(message) => LineOutcome {
            response: error_response(&Value::Null, &message),
            shutdown: false,
        },
        Ok(Request::Ping) => LineOutcome {
            response: Value::object(vec![("ok", Value::Bool(true)), ("pong", Value::Bool(true))])
                .to_string(),
            shutdown: false,
        },
        Ok(Request::Metrics) => LineOutcome {
            response: Value::object(vec![
                ("ok", Value::Bool(true)),
                ("metrics", service.metrics().to_json()),
            ])
            .to_string(),
            shutdown: false,
        },
        Ok(Request::Shutdown) => LineOutcome {
            response: Value::object(vec![
                ("ok", Value::Bool(true)),
                ("stopping", Value::Bool(true)),
            ])
            .to_string(),
            shutdown: true,
        },
        Ok(Request::Plan {
            id,
            instance,
            delay,
            options,
        }) => match service.plan(&instance, delay, options) {
            Err(error) => LineOutcome {
                response: error_response(&id, &error.to_string()),
                shutdown: false,
            },
            Ok(response) => LineOutcome {
                response: Value::object(vec![
                    ("id", id),
                    ("ok", Value::Bool(true)),
                    ("strategy", response.plan.strategy.to_json()),
                    ("ep", Value::Float(response.plan.expected_paging)),
                    ("tier", Value::from(response.plan.tier.name())),
                    ("cached", Value::Bool(response.cached)),
                    ("coalesced", Value::Bool(response.coalesced)),
                    (
                        "planning_micros",
                        Value::from(response.plan.planning_micros),
                    ),
                ])
                .to_string(),
                shutdown: false,
            },
        },
    }
}

fn error_response(id: &Value, message: &str) -> String {
    Value::object(vec![
        ("id", id.clone()),
        ("ok", Value::Bool(false)),
        ("error", Value::from(message)),
    ])
    .to_string()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::service::ServiceConfig;

    fn service() -> PagerService {
        PagerService::new(ServiceConfig {
            workers: 2,
            capacity: 64,
            ..ServiceConfig::default()
        })
    }

    #[test]
    fn plan_request_round_trip() {
        let svc = service();
        let line = r#"{"id": 7, "instance": [[0.5, 0.3, 0.2]], "delay": 2}"#;
        let out = handle_line(&svc, line);
        assert!(!out.shutdown);
        let v = jsonio::parse(&out.response).unwrap();
        assert_eq!(v.get("id").and_then(Value::as_i64), Some(7));
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true));
        assert_eq!(v.get("cached").and_then(Value::as_bool), Some(false));
        assert!(v.get("ep").and_then(Value::as_f64).unwrap() > 0.0);
        // Strategy covers all three cells.
        let strategy = v.get("strategy").and_then(Value::as_array).unwrap();
        let total: usize = strategy.iter().map(|g| g.as_array().unwrap().len()).sum();
        assert_eq!(total, 3);
        // Identical follow-up is served from cache.
        let again = handle_line(&svc, line);
        let v2 = jsonio::parse(&again.response).unwrap();
        assert_eq!(v2.get("cached").and_then(Value::as_bool), Some(true));
        assert_eq!(v2.get("strategy"), v.get("strategy"));
    }

    #[test]
    fn textio_instances_are_accepted() {
        let svc = service();
        let line = r##"{"id": "t", "instance": "# demo\n0.5 0.5\n1/4 3/4", "delay": 2}"##;
        let v = jsonio::parse(&handle_line(&svc, line).response).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{v}");
        assert_eq!(v.get("id").and_then(Value::as_str), Some("t"));
    }

    #[test]
    fn variants_parse_and_validate() {
        let svc = service();
        let bw = r#"{"instance": [[0.25,0.25,0.25,0.25]], "delay": 2, "variant": "bandwidth", "bandwidth": 2}"#;
        let v = jsonio::parse(&handle_line(&svc, bw).response).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{v}");
        assert_eq!(v.get("tier").and_then(Value::as_str), Some("bandwidth"));
        let missing = r#"{"instance": [[1.0]], "delay": 1, "variant": "bandwidth"}"#;
        let v = jsonio::parse(&handle_line(&svc, missing).response).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
        let unknown = r#"{"instance": [[1.0]], "delay": 1, "variant": "psychic"}"#;
        let v = jsonio::parse(&handle_line(&svc, unknown).response).unwrap();
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false));
    }

    #[test]
    fn malformed_lines_get_error_responses() {
        let svc = service();
        for bad in [
            "not json",
            "{}",
            r#"{"instance": [[0.5, 0.6]], "delay": 2}"#,
            r#"{"instance": [[0.5, 0.5]], "delay": 0}"#,
            r#"{"instance": [[0.5, 0.5]]}"#,
            r#"{"cmd": "dance"}"#,
        ] {
            let out = handle_line(&svc, bad);
            let v = jsonio::parse(&out.response).unwrap();
            assert_eq!(v.get("ok").and_then(Value::as_bool), Some(false), "{bad}");
            assert!(v.get("error").is_some(), "{bad}");
        }
    }

    #[test]
    fn control_lines() {
        let svc = service();
        let ping = handle_line(&svc, r#"{"cmd": "ping"}"#);
        assert!(ping.response.contains("pong"));
        let _ = handle_line(&svc, r#"{"instance": [[0.5, 0.5]], "delay": 1}"#);
        let metrics = handle_line(&svc, r#"{"cmd": "metrics"}"#);
        let v = jsonio::parse(&metrics.response).unwrap();
        assert_eq!(
            v.get("metrics")
                .and_then(|m| m.get("requests"))
                .and_then(Value::as_u64),
            Some(1)
        );
        let stop = handle_line(&svc, r#"{"cmd": "shutdown"}"#);
        assert!(stop.shutdown);
    }
}
