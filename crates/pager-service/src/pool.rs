//! Worker pool with batch coalescing.
//!
//! Planning requests flow through an `mpsc` queue consumed by a fixed
//! pool of std threads. Before a request is queued, the dispatcher
//! checks an *in-flight* table: if an identical key is already being
//! planned, the request subscribes to that computation instead of
//! enqueueing a duplicate — under bursts of identical instances
//! (exactly the conference-call hot path: many pages for the same
//! popular distribution) the pool does the work once and fans the
//! result out to every waiter.

use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use pager_core::{Delay, Instance};

use crate::planner::{plan, Plan, PlanError, TierPolicy, Variant};
use crate::service::PlanKey;
use crate::{cache::ShardedCache, metrics::Metrics};

/// Result fanned out to every subscriber of one computation.
pub(crate) type PlanResult = Result<Arc<Plan>, PlanError>;

struct Job {
    key: PlanKey,
    fingerprint: u64,
    instance: Instance,
    delay: Delay,
    variant: Variant,
}

/// Owns the queue, the in-flight table, and the worker threads.
pub(crate) struct Dispatcher {
    queue: Mutex<Option<mpsc::Sender<Job>>>,
    inflight: Arc<Mutex<HashMap<PlanKey, Vec<mpsc::Sender<PlanResult>>>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
}

impl Dispatcher {
    /// Starts the worker pool. Failing to spawn a worker thread tears
    /// the partial pool down cleanly (the queue sender drops, so
    /// already-started workers see a closed channel and exit).
    pub(crate) fn new(
        workers: usize,
        cache: Arc<ShardedCache<PlanKey, Plan>>,
        metrics: Arc<Metrics>,
        policy: TierPolicy,
    ) -> std::io::Result<Dispatcher> {
        let (tx, rx) = mpsc::channel::<Job>();
        let rx = Arc::new(Mutex::new(rx));
        let inflight: Arc<Mutex<HashMap<PlanKey, Vec<mpsc::Sender<PlanResult>>>>> =
            Arc::new(Mutex::new(HashMap::new()));
        let handles = (0..workers.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                let cache = Arc::clone(&cache);
                let metrics = Arc::clone(&metrics);
                let inflight = Arc::clone(&inflight);
                std::thread::Builder::new()
                    .name(format!("pager-worker-{i}"))
                    .spawn(move || worker_loop(&rx, &cache, &metrics, &inflight, policy))
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        Ok(Dispatcher {
            queue: Mutex::new(Some(tx)),
            inflight,
            workers: Mutex::new(handles),
        })
    }

    /// Submits a planning job, coalescing onto an identical in-flight
    /// one when possible. Returns the channel the result will arrive
    /// on and whether the request was coalesced.
    pub(crate) fn submit(
        &self,
        key: PlanKey,
        fingerprint: u64,
        instance: Instance,
        delay: Delay,
        variant: Variant,
    ) -> Result<(mpsc::Receiver<PlanResult>, bool), PlanError> {
        let (result_tx, result_rx) = mpsc::channel();
        let coalesced = {
            let mut inflight = self
                .inflight
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Some(waiters) = inflight.get_mut(&key) {
                waiters.push(result_tx);
                true
            } else {
                inflight.insert(key.clone(), vec![result_tx]);
                false
            }
        };
        if !coalesced {
            let queue = self
                .queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            let Some(tx) = queue.as_ref() else {
                // Shutting down: clear our registration and bail.
                self.inflight
                    .lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .remove(&key);
                return Err(PlanError("service is shutting down".into()));
            };
            tx.send(Job {
                key,
                fingerprint,
                instance,
                delay,
                variant,
            })
            .map_err(|_| PlanError("worker pool is gone".into()))?;
        }
        Ok((result_rx, coalesced))
    }

    /// Stops accepting work and joins every worker.
    pub(crate) fn shutdown(&self) {
        self.queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take();
        let handles: Vec<_> = self
            .workers
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .drain(..)
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for Dispatcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(
    rx: &Mutex<mpsc::Receiver<Job>>,
    cache: &ShardedCache<PlanKey, Plan>,
    metrics: &Metrics,
    inflight: &Mutex<HashMap<PlanKey, Vec<mpsc::Sender<PlanResult>>>>,
    policy: TierPolicy,
) {
    loop {
        // Hold the receiver lock only for the dequeue itself.
        let job = match rx
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .recv()
        {
            Ok(job) => job,
            Err(_) => return, // queue closed: shut down
        };
        // A coalesced burst may have already populated the cache by
        // the time this job reaches the front of the queue.
        let result: PlanResult = match cache.get(job.fingerprint, &job.key) {
            Some(ready) => Ok(ready),
            None => match plan(&job.instance, job.delay, job.variant, &policy) {
                Ok(fresh) => {
                    metrics
                        .tier_latency(fresh.tier)
                        .record(fresh.planning_micros);
                    let shared = cache.insert(job.fingerprint, job.key.clone(), Arc::new(fresh));
                    Ok(shared)
                }
                Err(error) => {
                    Metrics::inc(&metrics.errors);
                    Err(error)
                }
            },
        };
        let waiters = inflight
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .remove(&job.key)
            .unwrap_or_default();
        for waiter in waiters {
            // A waiter that hung up is its own problem.
            let _ = waiter.send(result.clone());
        }
    }
}
