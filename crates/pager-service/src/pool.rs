//! Worker pool with batch coalescing and bounded admission.
//!
//! Planning requests flow through a *bounded* `mpsc` queue consumed by
//! a fixed pool of std threads. Before a request is queued, the
//! dispatcher checks an *in-flight* table: if an identical key is
//! already being planned, the request subscribes to that computation
//! instead of enqueueing a duplicate — under bursts of identical
//! instances (exactly the conference-call hot path: many pages for the
//! same popular distribution) the pool does the work once and fans the
//! result out to every waiter.
//!
//! The queue bound is the backpressure valve: when `queue_depth` jobs
//! are already waiting, new distinct work is *shed* immediately with
//! [`ServiceError::Overloaded`] rather than queued behind a backlog it
//! would only deepen. Coalesced subscriptions never shed — joining an
//! in-flight computation adds no load.

use std::collections::HashMap;
use std::sync::mpsc;
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;

use pager_core::{Delay, Instance};

use crate::deadline::Deadline;
use crate::error::ServiceError;
use crate::planner::{plan, Plan, TierPolicy, Variant, RETRY_AFTER_MS};
use crate::service::PlanKey;
use crate::{cache::ShardedCache, metrics::Metrics};

/// Result fanned out to every subscriber of one computation.
pub(crate) type PlanResult = Result<Arc<Plan>, ServiceError>;

/// How one subscriber receives its result: a blocking channel (the
/// synchronous [`crate::PagerService::plan`] path) or a callback (the
/// event-loop server, which must never park a thread on a recv).
/// Callbacks run on whichever worker thread finishes the plan; the
/// reactor's callbacks only format a response and inject it into the
/// owning event loop, so they are cheap and nonblocking.
pub(crate) enum Waiter {
    Channel(mpsc::Sender<PlanResult>),
    Callback(Box<dyn FnOnce(PlanResult) + Send>),
}

impl Waiter {
    fn complete(self, result: PlanResult) {
        match self {
            // A waiter that hung up is its own problem.
            Waiter::Channel(tx) => {
                let _ = tx.send(result);
            }
            Waiter::Callback(callback) => callback(result),
        }
    }
}

/// One planning request as admitted to the pool — also the submit
/// API's parameter object, so the channel and callback flavours share
/// a signature.
pub(crate) struct PlanJob {
    pub(crate) key: PlanKey,
    pub(crate) fingerprint: u64,
    pub(crate) instance: Instance,
    pub(crate) delay: Delay,
    pub(crate) variant: Variant,
    /// The *admission-time* deadline: queueing delay counts against
    /// the budget, so a job that waited too long is already expired
    /// when a worker picks it up and cancels at the first checkpoint.
    pub(crate) deadline: Deadline,
}

/// Work the pool executes: planning requests (the hot path, coalesced
/// and shed) or one-off maintenance closures (snapshot checkpoints)
/// that share the same threads so background work can never outnumber
/// the configured worker count.
enum Job {
    Plan(PlanJob),
    Maintenance(Box<dyn FnOnce() + Send>),
}

/// What happened when a job was offered to the bounded queue.
enum Enqueue {
    Accepted,
    Full,
    Closed,
}

/// Owns the bounded queue, the in-flight table, and the worker
/// threads.
pub(crate) struct Dispatcher {
    queue: Mutex<Option<mpsc::SyncSender<Job>>>,
    inflight: Arc<Mutex<HashMap<PlanKey, Vec<Waiter>>>>,
    workers: Mutex<Vec<JoinHandle<()>>>,
    /// Pool size, kept for the shed path's drain-rate estimate.
    worker_count: u64,
    metrics: Arc<Metrics>,
}

impl Dispatcher {
    /// Starts the worker pool over a queue bounded at `queue_depth`
    /// waiting jobs. Failing to spawn a worker thread tears the
    /// partial pool down cleanly (the queue sender drops, so
    /// already-started workers see a closed channel and exit).
    pub(crate) fn new(
        workers: usize,
        queue_depth: usize,
        cache: Arc<ShardedCache<PlanKey, Plan>>,
        metrics: Arc<Metrics>,
        policy: TierPolicy,
    ) -> std::io::Result<Dispatcher> {
        let (tx, rx) = mpsc::sync_channel::<Job>(queue_depth.max(1));
        let rx = Arc::new(Mutex::new(rx));
        let inflight: Arc<Mutex<HashMap<PlanKey, Vec<Waiter>>>> =
            Arc::new(Mutex::new(HashMap::new()));
        let handles = (0..workers.max(1))
            .map(|i| {
                let rx = Arc::clone(&rx);
                let cache = Arc::clone(&cache);
                let metrics = Arc::clone(&metrics);
                let inflight = Arc::clone(&inflight);
                std::thread::Builder::new()
                    .name(format!("pager-worker-{i}"))
                    .spawn(move || worker_loop(&rx, &cache, &metrics, &inflight, policy))
            })
            .collect::<std::io::Result<Vec<_>>>()?;
        Ok(Dispatcher {
            queue: Mutex::new(Some(tx)),
            inflight,
            worker_count: workers.max(1) as u64,
            workers: Mutex::new(handles),
            metrics,
        })
    }

    /// Submits a planning job, coalescing onto an identical in-flight
    /// one when possible. Returns the channel the result will arrive
    /// on and whether the request was coalesced.
    ///
    /// # Errors
    ///
    /// [`ServiceError::Overloaded`] when the bounded queue is full
    /// (the request is shed, never queued); [`ServiceError::Internal`]
    /// during shutdown.
    pub(crate) fn submit(
        &self,
        job: PlanJob,
    ) -> Result<(mpsc::Receiver<PlanResult>, bool), ServiceError> {
        let (result_tx, result_rx) = mpsc::channel();
        let coalesced = self.submit_with(job, |_| Waiter::Channel(result_tx))?;
        Ok((result_rx, coalesced))
    }

    /// Callback flavour of [`Dispatcher::submit`] for the event-loop
    /// server: instead of parking on a channel, `callback` fires (on a
    /// worker thread) with the result and whether the request was
    /// coalesced. Returns the coalesced flag immediately so the caller
    /// can count the metric without waiting.
    ///
    /// Exactly-once contract: on `Ok`, the callback fires exactly once,
    /// later; on `Err`, it never fires — the submitter handles the
    /// error synchronously (any *coalescers* that joined between
    /// registration and the failure are failed through their own
    /// waiters).
    ///
    /// # Errors
    ///
    /// As [`Dispatcher::submit`].
    pub(crate) fn submit_callback(
        &self,
        job: PlanJob,
        callback: Box<dyn FnOnce(PlanResult, bool) + Send>,
    ) -> Result<bool, ServiceError> {
        self.submit_with(job, |coalesced| {
            Waiter::Callback(Box::new(move |result| callback(result, coalesced)))
        })
    }

    /// The shared registration + admission path. `make_waiter` is
    /// invoked *under the in-flight lock* with the coalesced flag, so
    /// callback waiters can capture it at the only moment it is known
    /// race-free. Returns whether the request coalesced.
    fn submit_with(
        &self,
        job: PlanJob,
        make_waiter: impl FnOnce(bool) -> Waiter,
    ) -> Result<bool, ServiceError> {
        let key = job.key.clone();
        let coalesced = {
            let _cls = pager_core::lockcheck::acquire("inflight");
            let mut inflight = self
                .inflight
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            if let Some(waiters) = inflight.get_mut(&key) {
                waiters.push(make_waiter(true));
                true
            } else {
                inflight.insert(key.clone(), vec![make_waiter(false)]);
                false
            }
        };
        if coalesced {
            return Ok(true);
        }
        // Gauge before the offer: the moment the job lands in the
        // channel a worker may dequeue it and run the matching `dec`,
        // so incrementing after `try_send` could order inc after dec
        // and leak a permanent +1 (dec saturates at zero).
        Metrics::inc(&self.metrics.queue_depth);
        // First request for this key: offer it to the bounded queue.
        // The queue lock is released before touching the in-flight
        // table again (lock order: queue before inflight, never
        // nested the other way).
        let outcome = {
            let _cls = pager_core::lockcheck::acquire("queue");
            let queue = self
                .queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            match queue.as_ref() {
                None => Enqueue::Closed,
                Some(tx) => match tx.try_send(Job::Plan(job)) {
                    Ok(()) => Enqueue::Accepted,
                    Err(mpsc::TrySendError::Full(_)) => Enqueue::Full,
                    Err(mpsc::TrySendError::Disconnected(_)) => Enqueue::Closed,
                },
            }
        };
        match outcome {
            Enqueue::Accepted => Ok(false),
            Enqueue::Full => {
                // Shed: un-register and fail everyone who coalesced
                // onto this key between our insert and now, so nobody
                // waits on a computation that will never run. The
                // retry hint is the time the pool needs to drain the
                // current backlog at the measured planning rate — a
                // full queue of microsecond greedy plans clears in
                // milliseconds, a full queue of exact plans does not,
                // and a constant hint gets both wrong.
                Metrics::dec(&self.metrics.queue_depth);
                let error = ServiceError::Overloaded {
                    retry_after_ms: self
                        .metrics
                        .suggested_retry_after_ms(self.worker_count, RETRY_AFTER_MS),
                };
                Metrics::inc(&self.metrics.requests_shed);
                self.fail_coalescers(&key, &error);
                Err(error)
            }
            Enqueue::Closed => {
                Metrics::dec(&self.metrics.queue_depth);
                let error = ServiceError::Internal("service is shutting down".into());
                self.fail_coalescers(&key, &error);
                Err(error)
            }
        }
    }

    /// Offers a one-off maintenance closure (e.g. a snapshot
    /// checkpoint) to the worker pool. Maintenance bypasses the
    /// in-flight table (there is nothing to coalesce or wait on) but
    /// respects the bounded queue: under full load the checkpoint is
    /// simply not scheduled this round, and the caller's trigger will
    /// re-fire on a later observe.
    ///
    /// Returns whether the job was accepted.
    pub(crate) fn submit_maintenance(&self, work: Box<dyn FnOnce() + Send>) -> bool {
        Metrics::inc(&self.metrics.queue_depth);
        let accepted = {
            let _cls = pager_core::lockcheck::acquire("queue");
            let queue = self
                .queue
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner);
            match queue.as_ref() {
                None => false,
                Some(tx) => tx.try_send(Job::Maintenance(work)).is_ok(),
            }
        };
        if !accepted {
            Metrics::dec(&self.metrics.queue_depth);
        }
        accepted
    }

    /// Removes a key's in-flight registration and sends `error` to
    /// every subscriber that *coalesced* onto it. The first waiter —
    /// the submitter whose enqueue just failed — is skipped: it gets
    /// the error as the `submit` return value, and completing its
    /// waiter too would deliver the answer twice (fatal for callback
    /// waiters, which write a response line each time they fire).
    fn fail_coalescers(&self, key: &PlanKey, error: &ServiceError) {
        let _cls = pager_core::lockcheck::acquire("inflight");
        let waiters = self
            .inflight
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .remove(key)
            .unwrap_or_default();
        for waiter in waiters.into_iter().skip(1) {
            waiter.complete(Err(error.clone()));
        }
    }

    /// Stops accepting work and joins every worker.
    pub(crate) fn shutdown(&self) {
        let _cls_queue = pager_core::lockcheck::acquire("queue");
        self.queue
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .take();
        let _cls_workers = pager_core::lockcheck::acquire("workers");
        let handles: Vec<_> = self
            .workers
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner)
            .drain(..)
            .collect();
        for handle in handles {
            let _ = handle.join();
        }
    }
}

impl Drop for Dispatcher {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn worker_loop(
    rx: &Mutex<mpsc::Receiver<Job>>,
    cache: &ShardedCache<PlanKey, Plan>,
    metrics: &Metrics,
    inflight: &Mutex<HashMap<PlanKey, Vec<Waiter>>>,
    policy: TierPolicy,
) {
    loop {
        // Hold the receiver lock only for the dequeue itself.
        let job = {
            let _cls = pager_core::lockcheck::acquire("worker_rx");
            match rx
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .recv()
            {
                Ok(job) => job,
                Err(_) => return, // queue closed: shut down
            }
        };
        Metrics::dec(&metrics.queue_depth);
        let job = match job {
            Job::Plan(job) => job,
            Job::Maintenance(work) => {
                work();
                continue;
            }
        };
        // A coalesced burst may have already populated the cache by
        // the time this job reaches the front of the queue.
        let result: PlanResult = match cache.get(job.fingerprint, &job.key) {
            Some(ready) => Ok(ready),
            None => {
                let token = job.deadline.token();
                match plan(&job.instance, job.delay, job.variant, &policy, &token) {
                    Ok(fresh) => {
                        metrics
                            .tier_latency(fresh.tier)
                            .record(fresh.planning_micros);
                        if fresh.downgraded {
                            Metrics::inc(&metrics.deadline_downgrades);
                        }
                        if job.deadline.expired() {
                            Metrics::inc(&metrics.deadline_misses);
                        }
                        if fresh.downgraded {
                            // A downgraded plan is a deadline artefact,
                            // not the best answer for this key: caching
                            // it would poison the slot for every later
                            // patient request.
                            Ok(Arc::new(fresh))
                        } else {
                            Ok(cache.insert(job.fingerprint, job.key.clone(), Arc::new(fresh)))
                        }
                    }
                    Err(error) => {
                        Metrics::inc(&metrics.errors);
                        if matches!(error, ServiceError::Overloaded { .. }) {
                            Metrics::inc(&metrics.deadline_misses);
                        }
                        Err(error)
                    }
                }
            }
        };
        let waiters = {
            let _cls = pager_core::lockcheck::acquire("inflight");
            inflight
                .lock()
                .unwrap_or_else(std::sync::PoisonError::into_inner)
                .remove(&job.key)
                .unwrap_or_default()
        };
        for waiter in waiters {
            waiter.complete(result.clone());
        }
    }
}
