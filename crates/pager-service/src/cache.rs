//! Sharded, capacity-bounded LRU strategy cache.
//!
//! The cache is split into `shards` independent maps, each behind its
//! own mutex, with a key routed to a shard by its precomputed 64-bit
//! fingerprint. Concurrent lookups on different shards never contend;
//! under uniform fingerprints, contention drops by the shard factor.
//!
//! Each shard is a true LRU bounded at `capacity / shards` entries:
//! entries carry a monotone "last used" tick and the oldest entry is
//! evicted on overflow. Eviction scans the shard (`O(shard size)`),
//! which for the intended capacities (≤ a few thousand entries per
//! shard) is cheaper and simpler than an intrusive list, and happens
//! only on insert after the shard is full.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A sharded LRU map from plan keys to cached plans.
#[derive(Debug)]
pub struct ShardedCache<K, V> {
    shards: Vec<Mutex<Shard<K, V>>>,
    per_shard_capacity: usize,
    evictions: AtomicU64,
}

#[derive(Debug)]
struct Shard<K, V> {
    map: HashMap<K, Entry<V>>,
    tick: u64,
}

#[derive(Debug)]
struct Entry<V> {
    value: Arc<V>,
    last_used: u64,
}

impl<K: Eq + Hash + Clone, V> ShardedCache<K, V> {
    /// Creates a cache of at most `capacity` entries spread over
    /// `shards` shards (both forced to at least 1).
    #[must_use]
    pub fn new(capacity: usize, shards: usize) -> ShardedCache<K, V> {
        let shards = shards.max(1);
        let per_shard_capacity = capacity.div_ceil(shards).max(1);
        ShardedCache {
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        tick: 0,
                    })
                })
                .collect(),
            per_shard_capacity,
            evictions: AtomicU64::new(0),
        }
    }

    /// Number of shards.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Total entries evicted since creation.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        // lint:allow(atomics-ordering-audit): monotone stats counter, no ordering consumers
        self.evictions.load(Ordering::Relaxed)
    }

    /// Current total entry count (sums shard sizes; racy but accurate
    /// at rest).
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| {
                s.lock()
                    .unwrap_or_else(std::sync::PoisonError::into_inner)
                    .map
                    .len()
            })
            .sum()
    }

    /// Whether the cache holds no entries.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn shard_for(&self, fingerprint: u64) -> &Mutex<Shard<K, V>> {
        // High bits: the low bits of sequential fingerprints may
        // correlate with the hash mixer's tail.
        let idx = (fingerprint >> 32) as usize % self.shards.len();
        &self.shards[idx]
    }

    /// Looks up `key` (routed by `fingerprint`), refreshing its LRU
    /// position on a hit.
    #[must_use]
    pub fn get(&self, fingerprint: u64, key: &K) -> Option<Arc<V>> {
        let mut shard = self
            .shard_for(fingerprint)
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        shard.tick += 1;
        let tick = shard.tick;
        let entry = shard.map.get_mut(key)?;
        entry.last_used = tick;
        Some(Arc::clone(&entry.value))
    }

    /// Inserts `key → value`, evicting the least-recently-used entry
    /// of the target shard if it is full. Returns the stored handle.
    pub fn insert(&self, fingerprint: u64, key: K, value: Arc<V>) -> Arc<V> {
        let mut shard = self
            .shard_for(fingerprint)
            .lock()
            .unwrap_or_else(std::sync::PoisonError::into_inner);
        shard.tick += 1;
        let tick = shard.tick;
        if shard.map.len() >= self.per_shard_capacity && !shard.map.contains_key(&key) {
            if let Some(oldest) = shard
                .map
                .iter()
                .min_by_key(|(_, e)| e.last_used)
                .map(|(k, _)| k.clone())
            {
                shard.map.remove(&oldest);
                // lint:allow(atomics-ordering-audit): monotone stats counter, no ordering consumers
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
        let stored = Arc::clone(&value);
        shard.map.insert(
            key,
            Entry {
                value,
                last_used: tick,
            },
        );
        stored
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn fp(k: u64) -> u64 {
        // Spread test keys across shards like real fingerprints do.
        k.wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    #[test]
    fn get_and_insert_round_trip() {
        let cache: ShardedCache<u64, String> = ShardedCache::new(64, 4);
        assert!(cache.get(fp(1), &1).is_none());
        cache.insert(fp(1), 1, Arc::new("one".into()));
        assert_eq!(cache.get(fp(1), &1).unwrap().as_str(), "one");
        assert_eq!(cache.len(), 1);
    }

    #[test]
    fn evicts_least_recently_used_within_shard() {
        // Single shard so LRU order is global and deterministic.
        let cache: ShardedCache<u64, u64> = ShardedCache::new(3, 1);
        for k in 0..3 {
            cache.insert(fp(k), k, Arc::new(k));
        }
        // Touch 0 and 2 so 1 is the LRU victim.
        assert!(cache.get(fp(0), &0).is_some());
        assert!(cache.get(fp(2), &2).is_some());
        cache.insert(fp(3), 3, Arc::new(3));
        assert!(cache.get(fp(1), &1).is_none(), "LRU entry evicted");
        assert!(cache.get(fp(0), &0).is_some());
        assert!(cache.get(fp(3), &3).is_some());
        assert_eq!(cache.evictions(), 1);
        assert_eq!(cache.len(), 3);
    }

    #[test]
    fn reinserting_existing_key_does_not_evict() {
        let cache: ShardedCache<u64, u64> = ShardedCache::new(2, 1);
        cache.insert(fp(1), 1, Arc::new(10));
        cache.insert(fp(2), 2, Arc::new(20));
        cache.insert(fp(1), 1, Arc::new(11));
        assert_eq!(cache.evictions(), 0);
        assert_eq!(*cache.get(fp(1), &1).unwrap(), 11);
        assert_eq!(*cache.get(fp(2), &2).unwrap(), 20);
    }

    #[test]
    fn capacity_is_bounded_under_churn() {
        let cache: ShardedCache<u64, u64> = ShardedCache::new(100, 8);
        for k in 0..10_000u64 {
            cache.insert(fp(k), k, Arc::new(k));
        }
        // Per-shard capacity is ceil(100/8); total stays bounded.
        assert!(cache.len() <= 13 * 8, "len {} over bound", cache.len());
        assert!(cache.evictions() > 0);
    }

    #[test]
    fn concurrent_access_is_safe() {
        let cache: Arc<ShardedCache<u64, u64>> = Arc::new(ShardedCache::new(256, 8));
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let cache = Arc::clone(&cache);
                std::thread::spawn(move || {
                    for i in 0..2_000u64 {
                        let k = (t * 37 + i) % 512;
                        if let Some(v) = cache.get(fp(k), &k) {
                            assert_eq!(*v, k);
                        } else {
                            cache.insert(fp(k), k, Arc::new(k));
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(cache.len() <= 256 + 8);
    }
}
