//! The planning service façade: cache → coalesce → plan.

use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use pager_core::{Delay, Instance};
use pager_profiles::io::{DiskIo, StorageIo};
use pager_profiles::{
    DurabilityConfig, DurableError, DurableStore, Estimator, FsyncPolicy, ProfileStore,
    RecoveryReport, ReplicaApplier, Sighting, StoreConfig, Time,
};

use crate::cache::ShardedCache;
use crate::deadline::Deadline;
use crate::error::ServiceError;
use crate::metrics::Metrics;
use crate::planner::{plan, Plan, TierPolicy, Variant};
use crate::pool::{Dispatcher, PlanJob};

/// The full cache key: quantised probabilities plus everything else
/// that changes the answer. Two requests with equal keys are served
/// the *same* strategy object.
///
/// For profile-driven requests the key carries the estimator and the
/// per-device profile versions: ingesting a sighting bumps a version,
/// so the updated device can never be answered with a strategy planned
/// from its older profile, even when the quantised probabilities
/// happen to coincide.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    buckets: Vec<u32>,
    devices: usize,
    cells: usize,
    delay: usize,
    variant: Variant,
    grid: u32,
    /// Estimator tag for profile-driven plans (0 for matrix requests).
    estimator: u64,
    /// Profile versions for profile-driven plans (empty for matrix
    /// requests).
    profile_versions: Vec<u64>,
}

/// Where and how profile state is persisted.
///
/// Attached to [`ServiceConfig::durability`]; `None` there keeps the
/// pre-durability behaviour (profiles are in-memory only and vanish on
/// restart).
#[derive(Clone)]
pub struct DurabilityOptions {
    /// Directory holding the generation-numbered snapshot + WAL pair.
    pub data_dir: PathBuf,
    /// When WAL appends are fsynced relative to the ack.
    pub fsync: FsyncPolicy,
    /// Rotate a snapshot after this many WAL records (0 disables
    /// count-triggered checkpoints).
    pub checkpoint_every: u64,
    /// Storage backend override; `None` uses the real filesystem.
    /// Tests inject `pager_profiles::io::FaultyIo` here to drive the
    /// degraded path deterministically.
    pub io: Option<Arc<dyn StorageIo>>,
}

impl DurabilityOptions {
    /// Durability in `data_dir` with the defaults: fsync on every
    /// ack, checkpoint every 10 000 records, real filesystem.
    #[must_use]
    pub fn new(data_dir: impl Into<PathBuf>) -> DurabilityOptions {
        DurabilityOptions {
            data_dir: data_dir.into(),
            fsync: FsyncPolicy::Always,
            checkpoint_every: 10_000,
            io: None,
        }
    }
}

impl std::fmt::Debug for DurabilityOptions {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurabilityOptions")
            .field("data_dir", &self.data_dir)
            .field("fsync", &self.fsync)
            .field("checkpoint_every", &self.checkpoint_every)
            .field("io", &self.io.as_ref().map(|_| "injected"))
            .finish()
    }
}

/// Service configuration knobs.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Planner threads consuming the request queue.
    pub workers: usize,
    /// Cache shards (independent locks).
    pub shards: usize,
    /// Total cached strategies across all shards.
    pub capacity: usize,
    /// Quantisation grid for cache keys: probabilities are bucketed
    /// to multiples of `1/grid`. Coarser grids (smaller values) hit
    /// more, at the cost of serving strategies planned for instances
    /// up to `1/(2·grid)` away per entry.
    pub grid: u32,
    /// Exact-tier dispatch limits.
    pub policy: TierPolicy,
    /// Profile-store sizing and estimation knobs (capacity, shards,
    /// smoothing, staleness half-life).
    pub profiles: StoreConfig,
    /// Bound of the admission queue: jobs beyond this many waiting are
    /// shed with `"code": "overloaded"` instead of queueing.
    pub queue_depth: usize,
    /// Default per-request deadline budget, applied when a request
    /// carries no `deadline_ms` of its own (`None` = unbounded).
    pub default_deadline_ms: Option<u64>,
    /// Crash-safe profile persistence (`None` = in-memory only).
    pub durability: Option<DurabilityOptions>,
    /// Stable identity of this node in a cluster deployment, reported
    /// by the `node_info` wire op (`None` = standalone).
    pub node_id: Option<String>,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            workers: std::thread::available_parallelism()
                .map_or(4, usize::from)
                .clamp(2, 16),
            shards: 16,
            capacity: 4096,
            grid: 1000,
            policy: TierPolicy::default(),
            profiles: StoreConfig::default(),
            queue_depth: 256,
            default_deadline_ms: Some(30_000),
            durability: None,
            node_id: None,
        }
    }
}

/// Everything one planning request asks for, in one typed value.
///
/// A spec carries the delay bound, the solver [`Variant`], the cache
/// opt-out, and the deadline budget; [`PagerService::plan`],
/// [`PagerService::plan_devices`] and the wire parser all construct
/// one, and the cache key is derived from it in exactly one place.
///
/// # Examples
///
/// ```
/// use pager_core::Delay;
/// use pager_service::{PlanSpec, Variant};
///
/// let spec = PlanSpec::new(Delay::new(3)?)
///     .with_variant(Variant::Greedy)
///     .with_deadline_ms(250);
/// assert_eq!(spec.variant(), Variant::Greedy);
/// assert_eq!(spec.deadline_ms(), Some(250));
/// assert!(spec.cache_enabled());
/// # Ok::<(), pager_core::Error>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanSpec {
    delay: Delay,
    variant: Variant,
    cache: bool,
    deadline_ms: Option<u64>,
}

impl PlanSpec {
    /// A spec with the given delay bound and the defaults: `Auto`
    /// variant, caching on, server-default deadline.
    #[must_use]
    pub fn new(delay: Delay) -> PlanSpec {
        PlanSpec {
            delay,
            variant: Variant::Auto,
            cache: true,
            deadline_ms: None,
        }
    }

    /// Selects the solver variant.
    #[must_use]
    pub fn with_variant(mut self, variant: Variant) -> PlanSpec {
        self.variant = variant;
        self
    }

    /// Opts in or out of the strategy cache.
    #[must_use]
    pub fn with_cache(mut self, cache: bool) -> PlanSpec {
        self.cache = cache;
        self
    }

    /// Sets an explicit deadline budget, overriding the server
    /// default.
    #[must_use]
    pub fn with_deadline_ms(mut self, deadline_ms: u64) -> PlanSpec {
        self.deadline_ms = Some(deadline_ms);
        self
    }

    /// The delay bound (maximum paging rounds).
    #[must_use]
    pub fn delay(&self) -> Delay {
        self.delay
    }

    /// The requested solver variant.
    #[must_use]
    pub fn variant(&self) -> Variant {
        self.variant
    }

    /// Whether this request may read/populate the strategy cache.
    #[must_use]
    pub fn cache_enabled(&self) -> bool {
        self.cache
    }

    /// The explicit deadline budget, if any (`None` defers to the
    /// server default).
    #[must_use]
    pub fn deadline_ms(&self) -> Option<u64> {
        self.deadline_ms
    }
}

/// A served plan plus how it was served.
#[derive(Debug, Clone)]
pub struct PlanResponse {
    /// The plan (shared with the cache and any coalesced waiters).
    pub plan: Arc<Plan>,
    /// Served straight from the cache.
    pub cached: bool,
    /// Joined an identical in-flight computation.
    pub coalesced: bool,
}

/// A plan served for named devices out of the profile store.
#[derive(Debug, Clone)]
pub struct DevicePlanResponse {
    /// The plan, as for a matrix request.
    pub response: PlanResponse,
    /// The profile version each device's row was built from (same
    /// order as the requested devices). These are part of the cache
    /// key: a later sighting bumps them and forces a re-plan.
    pub versions: Vec<u64>,
    /// How many of the devices were stale (staleness weight below ½)
    /// when the plan was built.
    pub stale_profiles: usize,
    /// The clock the distributions were evaluated at.
    pub now: Time,
}

/// A concurrent strategy-planning service.
///
/// Cheap to share: wrap in an [`Arc`] and call [`PagerService::plan`]
/// from any number of threads.
///
/// # Examples
///
/// ```
/// use pager_service::{PagerService, PlanSpec, ServiceConfig};
/// use pager_core::{Delay, Instance};
///
/// let service = PagerService::new(ServiceConfig::default());
/// let inst = Instance::from_rows(vec![vec![0.5, 0.3, 0.2]]).unwrap();
/// let spec = PlanSpec::new(Delay::new(2).unwrap());
/// let first = service.plan(&inst, spec).unwrap();
/// let again = service.plan(&inst, spec).unwrap();
/// assert!(!first.cached && again.cached);
/// assert_eq!(first.plan.strategy, again.plan.strategy);
/// ```
pub struct PagerService {
    config: ServiceConfig,
    cache: Arc<ShardedCache<PlanKey, Plan>>,
    metrics: Arc<Metrics>,
    dispatcher: Dispatcher,
    profiles: Arc<ProfileStore>,
    /// Present when the service was configured with a data directory;
    /// `observe` then appends to the WAL before acking.
    durable: Option<Arc<DurableStore>>,
    /// WAL-shipping apply endpoint, present alongside `durable`: the
    /// `replicate` wire op installs snapshots and applies shipped
    /// frames through it.
    replica: Option<Arc<ReplicaApplier>>,
    /// Set by the `replicate`/`promote` wire op when this node takes
    /// over a dead leader's shard; reported by `node_info` so the
    /// cluster harness can observe the failover state machine.
    promoted: AtomicBool,
    /// What startup recovery found (None without durability).
    recovery: Option<RecoveryReport>,
}

impl PagerService {
    /// Builds a service and starts its worker pool.
    ///
    /// # Panics
    ///
    /// Panics when [`PagerService::try_new`] would fail; prefer that
    /// constructor anywhere a crash is not acceptable.
    #[must_use]
    pub fn new(config: ServiceConfig) -> PagerService {
        match PagerService::try_new(config) {
            Ok(service) => service,
            // lint:allow(no-unwrap-outside-tests): documented panicking convenience wrapper
            Err(e) => panic!("PagerService::new: {e}"),
        }
    }

    /// Builds a service and starts its worker pool, surfacing invalid
    /// configuration and spawn failures as values.
    ///
    /// # Errors
    ///
    /// [`ServiceError::BadRequest`] when the profile knobs in
    /// `config.profiles` are invalid (non-positive smoothing, decay
    /// outside `(0, 1]`, ...); [`ServiceError::Internal`] when worker
    /// threads cannot be started.
    pub fn try_new(config: ServiceConfig) -> Result<PagerService, ServiceError> {
        let (profiles, durable, replica, recovery) = match &config.durability {
            None => {
                let profiles = Arc::new(ProfileStore::new(config.profiles).map_err(|why| {
                    ServiceError::BadRequest(format!("invalid profile configuration: {why}"))
                })?);
                (profiles, None, None, None)
            }
            Some(opts) => {
                let io: Arc<dyn StorageIo> = opts.io.clone().unwrap_or_else(|| Arc::new(DiskIo));
                let (durable, report) = DurableStore::open(
                    Arc::clone(&io),
                    &opts.data_dir,
                    config.profiles,
                    DurabilityConfig {
                        fsync: opts.fsync,
                        checkpoint_every: opts.checkpoint_every,
                    },
                )
                .map_err(|why| {
                    ServiceError::Internal(format!(
                        "opening data dir {}: {why}",
                        opts.data_dir.display()
                    ))
                })?;
                let durable = Arc::new(durable);
                let replica = Arc::new(ReplicaApplier::new(
                    Arc::clone(&durable),
                    io,
                    &opts.data_dir,
                ));
                (
                    Arc::clone(durable.store()),
                    Some(durable),
                    Some(replica),
                    Some(report),
                )
            }
        };
        let cache = Arc::new(ShardedCache::new(config.capacity, config.shards));
        let metrics = Arc::new(Metrics::default());
        if let Some(report) = &recovery {
            self_mirror_recovery(&metrics, report);
        }
        let dispatcher = Dispatcher::new(
            config.workers,
            config.queue_depth,
            Arc::clone(&cache),
            Arc::clone(&metrics),
            config.policy,
        )
        .map_err(|e| ServiceError::Internal(format!("spawning worker threads: {e}")))?;
        Ok(PagerService {
            config,
            cache,
            metrics,
            dispatcher,
            profiles,
            durable,
            replica,
            promoted: AtomicBool::new(false),
            recovery,
        })
    }

    /// The configuration the service was built with.
    #[must_use]
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Live metrics (shared; read with `Metrics::get` or dump with
    /// `Metrics::to_json`).
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The device-profile store behind `observe` / `plan_devices`.
    #[must_use]
    pub fn profiles(&self) -> &ProfileStore {
        &self.profiles
    }

    /// What startup recovery found: `None` when the service runs
    /// without durability, otherwise the generation, records
    /// replayed, and torn-tail bytes truncated.
    #[must_use]
    pub fn recovery(&self) -> Option<RecoveryReport> {
        self.recovery
    }

    /// Whether the data disk has failed and observes are being
    /// refused with `"code": "degraded"`. Always `false` without
    /// durability.
    #[must_use]
    pub fn degraded(&self) -> bool {
        self.durable.as_ref().is_some_and(|d| d.degraded())
    }

    /// The durable store, when the service persists profiles. The
    /// `replicate` wire op exports WAL frames and snapshots from it.
    #[must_use]
    pub fn durable(&self) -> Option<&Arc<DurableStore>> {
        self.durable.as_ref()
    }

    /// The replication apply endpoint, present iff durability is on.
    #[must_use]
    pub fn replica(&self) -> Option<&Arc<ReplicaApplier>> {
        self.replica.as_ref()
    }

    /// This node's cluster identity (`None` when standalone).
    #[must_use]
    pub fn node_id(&self) -> Option<&str> {
        self.config.node_id.as_deref()
    }

    /// Whether this node has been promoted to leader for a shard it
    /// was following (set by the `replicate`/`promote` wire op).
    #[must_use]
    pub fn promoted(&self) -> bool {
        self.promoted.load(Ordering::Acquire)
    }

    /// Flips the promotion flag; called by the wire layer on
    /// `replicate`/`promote`.
    pub fn set_promoted(&self, promoted: bool) {
        self.promoted.store(promoted, Ordering::Release);
    }

    /// The cache key for a request, exposed so tests and tools can
    /// reason about hit behaviour.
    #[must_use]
    pub fn cache_key(&self, instance: &Instance, spec: &PlanSpec) -> PlanKey {
        self.derive_key(instance, spec, 0, &[]).0
    }

    /// The single place cache keys (and their shard fingerprints) are
    /// derived. Both the matrix and the profile-driven paths funnel
    /// through here, so key composition cannot drift between them.
    ///
    /// The deadline budget is deliberately *not* part of the key: a
    /// strategy is equally valid however long the caller was willing
    /// to wait for it.
    fn derive_key(
        &self,
        instance: &Instance,
        spec: &PlanSpec,
        estimator: u64,
        versions: &[u64],
    ) -> (PlanKey, u64) {
        let key = PlanKey {
            buckets: instance.quantized_buckets(self.config.grid),
            devices: instance.num_devices(),
            cells: instance.num_cells(),
            delay: spec.delay().get(),
            variant: spec.variant(),
            grid: self.config.grid,
            estimator,
            profile_versions: versions.to_vec(),
        };
        let mut fp = instance.fingerprint64(self.config.grid);
        // Fold the non-instance key parts in FNV-style.
        let words = [
            spec.delay().get() as u64,
            variant_tag(spec.variant()),
            estimator,
        ]
        .into_iter()
        .chain(versions.iter().copied());
        for word in words {
            for byte in word.to_le_bytes() {
                fp ^= u64::from(byte);
                fp = fp.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        (key, fp)
    }

    /// Materialises the request's deadline budget (or the server
    /// default) into an absolute instant at admission, so queueing
    /// time counts against it.
    fn admit(&self, spec: &PlanSpec) -> Deadline {
        Deadline::from_budget_ms(spec.deadline_ms().or(self.config.default_deadline_ms))
    }

    /// Inline planning on the caller thread: the pool exists to dedupe
    /// identical work, and uncacheable work cannot be deduped.
    fn plan_inline(
        &self,
        instance: &Instance,
        spec: &PlanSpec,
        deadline: Deadline,
    ) -> Result<PlanResponse, ServiceError> {
        let token = deadline.token();
        let fresh = plan(
            instance,
            spec.delay(),
            spec.variant(),
            &self.config.policy,
            &token,
        )
        .inspect_err(|_| Metrics::inc(&self.metrics.errors))?;
        if fresh.downgraded {
            Metrics::inc(&self.metrics.deadline_downgrades);
        }
        if deadline.expired() {
            Metrics::inc(&self.metrics.deadline_misses);
        }
        self.metrics
            .tier_latency(fresh.tier)
            .record(fresh.planning_micros);
        Ok(PlanResponse {
            plan: Arc::new(fresh),
            cached: false,
            coalesced: false,
        })
    }

    /// Cacheable path shared by matrix and profile-driven requests:
    /// cache lookup, then dispatch with in-flight coalescing and
    /// bounded-queue admission.
    fn plan_via_cache(
        &self,
        key: PlanKey,
        fingerprint: u64,
        instance: &Instance,
        spec: &PlanSpec,
        deadline: Deadline,
    ) -> Result<PlanResponse, ServiceError> {
        if let Some(hit) = self.cache.get(fingerprint, &key) {
            Metrics::inc(&self.metrics.cache_hits);
            return Ok(PlanResponse {
                plan: hit,
                cached: true,
                coalesced: false,
            });
        }
        Metrics::inc(&self.metrics.cache_misses);
        let (rx, coalesced) = self.dispatcher.submit(PlanJob {
            key,
            fingerprint,
            instance: instance.clone(),
            delay: spec.delay(),
            variant: spec.variant(),
            deadline,
        })?;
        if coalesced {
            Metrics::inc(&self.metrics.coalesced);
        }
        let result = rx
            .recv()
            .map_err(|_| ServiceError::Internal("worker pool dropped the request".into()))?;
        result.map(|plan| PlanResponse {
            plan,
            cached: false,
            coalesced,
        })
    }

    /// Callback-flavoured cacheable path for the event-loop server.
    /// `Some(result)` means the request completed synchronously (cache
    /// hit or admission failure) and `on_done` was dropped unused;
    /// `None` means `on_done` will fire exactly once, later, on a
    /// worker thread.
    fn plan_via_cache_async(
        &self,
        key: PlanKey,
        fingerprint: u64,
        instance: &Instance,
        spec: &PlanSpec,
        deadline: Deadline,
        on_done: Box<dyn FnOnce(Result<PlanResponse, ServiceError>) + Send>,
    ) -> Option<Result<PlanResponse, ServiceError>> {
        if let Some(hit) = self.cache.get(fingerprint, &key) {
            Metrics::inc(&self.metrics.cache_hits);
            return Some(Ok(PlanResponse {
                plan: hit,
                cached: true,
                coalesced: false,
            }));
        }
        Metrics::inc(&self.metrics.cache_misses);
        let submitted = self.dispatcher.submit_callback(
            PlanJob {
                key,
                fingerprint,
                instance: instance.clone(),
                delay: spec.delay(),
                variant: spec.variant(),
                deadline,
            },
            Box::new(move |result, coalesced| {
                on_done(result.map(|plan| PlanResponse {
                    plan,
                    cached: false,
                    coalesced,
                }));
            }),
        );
        match submitted {
            Ok(coalesced) => {
                if coalesced {
                    Metrics::inc(&self.metrics.coalesced);
                }
                None
            }
            Err(error) => Some(Err(error)),
        }
    }

    /// Nonblocking flavour of [`PagerService::plan`] for
    /// readiness-driven callers: never parks the calling thread on a
    /// worker result.
    ///
    /// Returns `Some(result)` when the request completed on the
    /// calling thread — cache hit, uncacheable inline plan, or
    /// admission failure (shed/shutdown) — in which case `on_done` is
    /// dropped without firing. Returns `None` when the request was
    /// admitted to the worker pool; `on_done` then fires exactly once,
    /// on a worker thread, with the result. Errors surface inside
    /// either the returned value or the callback argument, as for
    /// [`PagerService::plan`].
    pub fn plan_async(
        &self,
        instance: &Instance,
        spec: PlanSpec,
        on_done: Box<dyn FnOnce(Result<PlanResponse, ServiceError>) + Send>,
    ) -> Option<Result<PlanResponse, ServiceError>> {
        Metrics::inc(&self.metrics.requests);
        let deadline = self.admit(&spec);
        if !spec.cache_enabled() {
            // Uncacheable work cannot coalesce, so it runs inline on
            // the calling thread (the event loop accepts this: opting
            // out of the cache opts into paying for the plan where it
            // is asked for).
            return Some(self.plan_inline(instance, &spec, deadline));
        }
        let (key, fingerprint) = self.derive_key(instance, &spec, 0, &[]);
        self.plan_via_cache_async(key, fingerprint, instance, &spec, deadline, on_done)
    }

    /// Nonblocking flavour of [`PagerService::plan_devices`], with the
    /// same `Some` = completed-now / `None` = callback-later contract
    /// as [`PagerService::plan_async`]. Profile estimation runs on the
    /// calling thread (it is in-memory table work); only the planning
    /// itself is handed to the pool.
    pub fn plan_devices_async(
        &self,
        devices: &[&str],
        estimator: Estimator,
        now: Option<Time>,
        spec: PlanSpec,
        on_done: Box<dyn FnOnce(Result<DevicePlanResponse, ServiceError>) + Send>,
    ) -> Option<Result<DevicePlanResponse, ServiceError>> {
        Metrics::inc(&self.metrics.requests);
        let deadline = self.admit(&spec);
        let prepared = self.prepare_device_instance(devices, estimator, now);
        let (instance, versions, stale_profiles, now) = match prepared {
            Ok(parts) => parts,
            Err(error) => return Some(Err(error)),
        };
        if !spec.cache_enabled() {
            return Some(
                self.plan_inline(&instance, &spec, deadline)
                    .map(|response| DevicePlanResponse {
                        response,
                        versions,
                        stale_profiles,
                        now,
                    }),
            );
        }
        // Estimator tag 0 is reserved for matrix requests.
        let (key, fingerprint) = self.derive_key(&instance, &spec, estimator.tag() + 1, &versions);
        let callback_versions = versions.clone();
        let result = self.plan_via_cache_async(
            key,
            fingerprint,
            &instance,
            &spec,
            deadline,
            Box::new(move |result| {
                on_done(result.map(|response| DevicePlanResponse {
                    response,
                    versions: callback_versions,
                    stale_profiles,
                    now,
                }));
            }),
        )?;
        // Completed synchronously (the moved-in callback was dropped
        // unused): assemble the device envelope here instead.
        Some(result.map(|response| DevicePlanResponse {
            response,
            versions,
            stale_profiles,
            now,
        }))
    }

    /// Plans a strategy, serving from the cache or an identical
    /// in-flight computation when possible.
    ///
    /// # Errors
    ///
    /// [`ServiceError::BadRequest`] / [`ServiceError::Unsupported`] on
    /// invalid variant parameters or solver limits;
    /// [`ServiceError::Overloaded`] when the admission queue is full or
    /// the deadline expired on a non-degradable tier;
    /// [`ServiceError::Internal`] when called during shutdown.
    pub fn plan(&self, instance: &Instance, spec: PlanSpec) -> Result<PlanResponse, ServiceError> {
        Metrics::inc(&self.metrics.requests);
        let deadline = self.admit(&spec);
        if !spec.cache_enabled() {
            return self.plan_inline(instance, &spec, deadline);
        }
        let (key, fingerprint) = self.derive_key(instance, &spec, 0, &[]);
        self.plan_via_cache(key, fingerprint, instance, &spec, deadline)
    }

    /// Ingests a batch of sightings into the profile store, returning
    /// `(device, new version)` per sighting. Metrics mirror the
    /// store's ingest/eviction counters after the batch.
    ///
    /// # Errors
    ///
    /// The first offending sighting's message (earlier sightings in
    /// the batch have been ingested — append-only, no rollback).
    pub fn observe(
        &self,
        cells: usize,
        sightings: &[Sighting],
    ) -> Result<Vec<(String, u64)>, ServiceError> {
        let result = match &self.durable {
            None => self
                .profiles
                .observe_batch(cells, sightings)
                .map_err(ServiceError::BadRequest),
            // Durable path: the batch is applied, WAL-appended, and
            // (per policy) fsynced before this returns — an Ok here is
            // the acked-write guarantee.
            Some(durable) => durable
                .observe_batch(cells, sightings)
                .map_err(|e| match e {
                    DurableError::Rejected(m) => ServiceError::BadRequest(m),
                    DurableError::Degraded(m) => ServiceError::Degraded(m),
                }),
        };
        let stats = self.profiles.stats();
        self.metrics
            .sightings_ingested
            // lint:allow(atomics-ordering-audit): metrics mirror of store stats, no handoff
            .store(stats.sightings, Ordering::Relaxed);
        self.metrics
            .profile_evictions
            // lint:allow(atomics-ordering-audit): metrics mirror of store stats, no handoff
            .store(stats.evictions, Ordering::Relaxed);
        if let Some(durable) = &self.durable {
            mirror_durability(&self.metrics, durable);
            self.maybe_schedule_checkpoint(durable);
        }
        result
    }

    /// Schedules a checkpoint on the worker pool when enough WAL
    /// records have accumulated. The maintenance job shares the
    /// planning threads (checkpoints can never outnumber workers) and
    /// respects the bounded queue: a full queue skips this round and
    /// the trigger re-arms on the next observe.
    fn maybe_schedule_checkpoint(&self, durable: &Arc<DurableStore>) {
        if !durable.take_checkpoint_due() {
            return;
        }
        let durable_job = Arc::clone(durable);
        let metrics = Arc::clone(&self.metrics);
        let accepted = self.dispatcher.submit_maintenance(Box::new(move || {
            // A failed checkpoint flips the store to degraded; the
            // mirror below surfaces it on the gauge either way.
            let _ = durable_job.checkpoint();
            mirror_durability(&metrics, &durable_job);
        }));
        if !accepted {
            durable.cancel_checkpoint_schedule();
        }
    }

    /// Plans a strategy for named devices out of the profile store.
    ///
    /// The per-device profile versions join the cache key and its
    /// fingerprint, so a sighting ingested between two otherwise
    /// identical requests forces a fresh plan — a stale cached
    /// strategy is unreachable by construction.
    ///
    /// # Errors
    ///
    /// [`ServiceError::BadRequest`] on unknown devices, an empty
    /// device list, or a store without a usable clock; otherwise the
    /// same errors as [`PagerService::plan`].
    pub fn plan_devices(
        &self,
        devices: &[&str],
        estimator: Estimator,
        now: Option<Time>,
        spec: PlanSpec,
    ) -> Result<DevicePlanResponse, ServiceError> {
        Metrics::inc(&self.metrics.requests);
        let deadline = self.admit(&spec);
        let (instance, versions, stale_profiles, now) =
            self.prepare_device_instance(devices, estimator, now)?;
        let response = if spec.cache_enabled() {
            // Estimator tag 0 is reserved for matrix requests.
            let (key, fingerprint) =
                self.derive_key(&instance, &spec, estimator.tag() + 1, &versions);
            self.plan_via_cache(key, fingerprint, &instance, &spec, deadline)?
        } else {
            self.plan_inline(&instance, &spec, deadline)?
        };
        Ok(DevicePlanResponse {
            response,
            versions,
            stale_profiles,
            now,
        })
    }

    /// The estimation front half of `plan_devices`: resolves the
    /// clock, materialises the named devices' distributions into an
    /// instance, and counts stale profiles (recording the metric).
    #[allow(clippy::type_complexity)]
    fn prepare_device_instance(
        &self,
        devices: &[&str],
        estimator: Estimator,
        now: Option<Time>,
    ) -> Result<(Instance, Vec<u64>, usize, Time), ServiceError> {
        let now = now.or_else(|| self.profiles.latest_time()).ok_or_else(|| {
            Metrics::inc(&self.metrics.errors);
            ServiceError::BadRequest("store has no sightings and no \"now\" was given".into())
        })?;
        let (instance, versions, staleness) = self
            .profiles
            .instance_for(devices, estimator, Some(now))
            .map_err(|e| {
                Metrics::inc(&self.metrics.errors);
                ServiceError::BadRequest(e)
            })?;
        let stale_profiles = staleness.iter().filter(|&&lambda| lambda < 0.5).count();
        if stale_profiles > 0 {
            self.metrics
                .stale_profiles_served
                // lint:allow(atomics-ordering-audit): monotone metrics counter, no handoff
                .fetch_add(stale_profiles as u64, Ordering::Relaxed);
        }
        Ok((instance, versions, stale_profiles, now))
    }

    /// Number of strategies currently cached.
    #[must_use]
    pub fn cached_strategies(&self) -> usize {
        self.cache.len()
    }

    /// Total cache evictions so far.
    #[must_use]
    pub fn cache_evictions(&self) -> u64 {
        self.cache.evictions()
    }

    /// Stops the worker pool (in-flight requests and scheduled
    /// checkpoints finish) and fsyncs any unsynced WAL tail, so a
    /// clean shutdown loses nothing even under `--fsync interval` /
    /// `never`. Later calls to [`PagerService::plan`] on the cacheable
    /// path fail fast.
    pub fn shutdown(&self) {
        self.dispatcher.shutdown();
        if let Some(durable) = &self.durable {
            let _ = durable.flush();
            mirror_durability(&self.metrics, durable);
        }
    }
}

/// Copies the durable store's counters onto the service metrics (the
/// atomics are mirrors, not sources of truth).
fn mirror_durability(metrics: &Metrics, durable: &DurableStore) {
    let stats = durable.stats();
    metrics
        .wal_appends
        // lint:allow(atomics-ordering-audit): metrics mirror of durable-store stats, no handoff
        .store(stats.wal_appends, Ordering::Relaxed);
    metrics
        .wal_fsyncs
        // lint:allow(atomics-ordering-audit): metrics mirror of durable-store stats, no handoff
        .store(stats.wal_fsyncs, Ordering::Relaxed);
    metrics
        .checkpoints
        // lint:allow(atomics-ordering-audit): metrics mirror of durable-store stats, no handoff
        .store(stats.checkpoints, Ordering::Relaxed);
    metrics
        .degraded
        // lint:allow(atomics-ordering-audit): advisory gauge, no handoff
        .store(u64::from(stats.degraded), Ordering::Relaxed);
}

/// Seeds the recovery counters once at startup.
fn self_mirror_recovery(metrics: &Metrics, report: &RecoveryReport) {
    metrics
        .wal_recovered_records
        // lint:allow(atomics-ordering-audit): set once before the service is shared
        .store(report.recovered_records, Ordering::Relaxed);
    metrics
        .wal_truncated_bytes
        // lint:allow(atomics-ordering-audit): set once before the service is shared
        .store(report.truncated_bytes, Ordering::Relaxed);
}

fn variant_tag(variant: Variant) -> u64 {
    match variant {
        Variant::Auto => 0,
        Variant::Exact => 1 << 32,
        Variant::Greedy => 2 << 32,
        Variant::Bandwidth(b) => (3 << 32) | b as u64,
        Variant::Signature(k) => (4 << 32) | k as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn service() -> PagerService {
        PagerService::new(ServiceConfig {
            workers: 4,
            shards: 4,
            capacity: 64,
            ..ServiceConfig::default()
        })
    }

    fn inst() -> Instance {
        Instance::from_rows(vec![vec![0.4, 0.3, 0.2, 0.1], vec![0.25, 0.25, 0.25, 0.25]]).unwrap()
    }

    #[test]
    fn second_identical_request_hits_cache() {
        let svc = service();
        let spec = PlanSpec::new(Delay::new(2).unwrap());
        let first = svc.plan(&inst(), spec).unwrap();
        assert!(!first.cached);
        let second = svc.plan(&inst(), spec).unwrap();
        assert!(second.cached);
        assert!(Arc::ptr_eq(&first.plan, &second.plan), "same shared plan");
        assert_eq!(Metrics::get(&svc.metrics().cache_hits), 1);
        assert_eq!(Metrics::get(&svc.metrics().cache_misses), 1);
        assert_eq!(Metrics::get(&svc.metrics().requests), 2);
    }

    #[test]
    fn nearby_instances_share_cache_entries() {
        let svc = service();
        let spec = PlanSpec::new(Delay::new(2).unwrap());
        let a = Instance::from_rows(vec![vec![0.50001, 0.49999]]).unwrap();
        let b = Instance::from_rows(vec![vec![0.49999, 0.50001]]).unwrap();
        assert!(!svc.plan(&a, spec).unwrap().cached);
        assert!(svc.plan(&b, spec).unwrap().cached);
    }

    #[test]
    fn different_delay_or_variant_miss() {
        let svc = service();
        let d2 = Delay::new(2).unwrap();
        let d3 = Delay::new(3).unwrap();
        svc.plan(&inst(), PlanSpec::new(d2)).unwrap();
        let other_delay = svc.plan(&inst(), PlanSpec::new(d3)).unwrap();
        assert!(!other_delay.cached);
        let forced_greedy = svc
            .plan(&inst(), PlanSpec::new(d2).with_variant(Variant::Greedy))
            .unwrap();
        assert!(!forced_greedy.cached);
    }

    #[test]
    fn deadline_is_not_part_of_the_key() {
        let svc = service();
        let d = Delay::new(2).unwrap();
        let patient = PlanSpec::new(d).with_deadline_ms(60_000);
        let hurried = PlanSpec::new(d).with_deadline_ms(17);
        assert_eq!(
            svc.cache_key(&inst(), &patient),
            svc.cache_key(&inst(), &hurried)
        );
        assert!(!svc.plan(&inst(), patient).unwrap().cached);
        assert!(svc.plan(&inst(), hurried).unwrap().cached);
    }

    #[test]
    fn uncached_requests_bypass_cache() {
        let svc = service();
        let spec = PlanSpec::new(Delay::new(2).unwrap()).with_cache(false);
        svc.plan(&inst(), spec).unwrap();
        svc.plan(&inst(), spec).unwrap();
        assert_eq!(svc.cached_strategies(), 0);
        assert_eq!(Metrics::get(&svc.metrics().cache_hits), 0);
    }

    #[test]
    fn errors_are_counted_and_not_cached() {
        let svc = service();
        let spec = PlanSpec::new(Delay::new(2).unwrap()).with_variant(Variant::Signature(99));
        assert!(svc.plan(&inst(), spec).is_err());
        assert!(svc.plan(&inst(), spec).is_err());
        assert_eq!(Metrics::get(&svc.metrics().errors), 2);
        assert_eq!(svc.cached_strategies(), 0);
    }

    #[test]
    fn concurrent_identical_requests_coalesce_or_hit() {
        let svc = Arc::new(service());
        let spec = PlanSpec::new(Delay::new(3).unwrap());
        // A moderately expensive exact instance so requests overlap.
        let heavy = Instance::uniform(3, 10).unwrap();
        let handles: Vec<_> = (0..16)
            .map(|_| {
                let svc = Arc::clone(&svc);
                let heavy = heavy.clone();
                std::thread::spawn(move || svc.plan(&heavy, spec).unwrap())
            })
            .collect();
        let responses: Vec<PlanResponse> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let baseline = &responses[0].plan;
        for r in &responses {
            assert_eq!(r.plan.strategy, baseline.strategy);
            assert_eq!(r.plan.expected_paging, baseline.expected_paging);
        }
        let m = svc.metrics();
        assert_eq!(Metrics::get(&m.requests), 16);
        // Every request either hit the cache or missed (and the
        // misses were deduped down to one stored strategy).
        assert_eq!(
            Metrics::get(&m.cache_hits) + Metrics::get(&m.cache_misses),
            16
        );
        assert_eq!(svc.cached_strategies(), 1);
    }

    #[test]
    fn shutdown_fails_fast() {
        let svc = service();
        svc.shutdown();
        let err = svc.plan(&inst(), PlanSpec::new(Delay::new(2).unwrap()));
        assert!(err.is_err());
    }

    fn sighting(device: &str, cell: usize, time: f64) -> pager_profiles::Sighting {
        pager_profiles::Sighting {
            device: device.to_string(),
            cell,
            time,
        }
    }

    #[test]
    fn observe_then_plan_devices_round_trip() {
        let svc = service();
        let batch: Vec<_> = (0..30u32)
            .flat_map(|t| {
                vec![
                    sighting("a", (t % 4) as usize, f64::from(t)),
                    sighting("b", 0, f64::from(t)),
                ]
            })
            .collect();
        svc.observe(4, &batch).unwrap();
        assert_eq!(Metrics::get(&svc.metrics().sightings_ingested), 60);
        let spec = PlanSpec::new(Delay::new(2).unwrap());
        let served = svc
            .plan_devices(&["a", "b"], Estimator::Empirical, None, spec)
            .unwrap();
        assert!(!served.response.cached);
        assert_eq!(served.versions.len(), 2);
        assert_eq!(served.stale_profiles, 0);
        assert_eq!(served.now, 29.0);
        // Identical request: same versions, served from cache.
        let again = svc
            .plan_devices(&["a", "b"], Estimator::Empirical, None, spec)
            .unwrap();
        assert!(again.response.cached);
        assert_eq!(again.versions, served.versions);
        // Unknown device errors and is counted.
        let ghost = svc.plan_devices(&["ghost"], Estimator::Empirical, None, spec);
        assert_eq!(
            ghost.err().map(|e| e.code()),
            Some("bad_request"),
            "unknown devices are the client's fault"
        );
        assert!(Metrics::get(&svc.metrics().errors) >= 1);
    }

    #[test]
    fn profile_update_invalidates_cached_plan() {
        let svc = service();
        for t in 0..20u32 {
            svc.observe(
                3,
                &[
                    sighting("a", (t % 3) as usize, f64::from(t)),
                    sighting("b", 1, f64::from(t)),
                ],
            )
            .unwrap();
        }
        let spec = PlanSpec::new(Delay::new(2).unwrap());
        let first = svc
            .plan_devices(&["a", "b"], Estimator::Empirical, Some(19.0), spec)
            .unwrap();
        // One more sighting for "b": its version bumps, so the same
        // request keys a different cache slot even if the quantised
        // rows coincide.
        svc.observe(3, &[sighting("b", 1, 19.5)]).unwrap();
        let second = svc
            .plan_devices(&["a", "b"], Estimator::Empirical, Some(19.0), spec)
            .unwrap();
        assert!(second.versions[1] > first.versions[1]);
        assert!(!second.response.cached, "stale plan must not be served");
        // Different estimators never share cache entries either.
        let markov = svc
            .plan_devices(&["a", "b"], Estimator::Markov, Some(19.0), spec)
            .unwrap();
        assert!(!markov.response.cached);
    }

    fn durable_config(io: Arc<dyn StorageIo>, checkpoint_every: u64) -> ServiceConfig {
        ServiceConfig {
            workers: 2,
            durability: Some(DurabilityOptions {
                data_dir: "/svc-data".into(),
                fsync: FsyncPolicy::Always,
                checkpoint_every,
                io: Some(io),
            }),
            ..ServiceConfig::default()
        }
    }

    #[test]
    fn durable_observe_survives_service_restart() {
        let mem = Arc::new(pager_profiles::io::MemIo::new());
        {
            let svc = PagerService::try_new(durable_config(
                Arc::<pager_profiles::io::MemIo>::clone(&mem),
                0,
            ))
            .unwrap();
            svc.observe(4, &[sighting("a", 1, 1.0), sighting("b", 2, 2.0)])
                .unwrap();
            assert!(Metrics::get(&svc.metrics().wal_appends) >= 2);
            assert!(Metrics::get(&svc.metrics().wal_fsyncs) >= 1);
            svc.shutdown();
        }
        mem.crash(17);
        let svc = PagerService::try_new(durable_config(
            Arc::<pager_profiles::io::MemIo>::clone(&mem),
            0,
        ))
        .unwrap();
        let report = svc.recovery().unwrap();
        assert_eq!(report.recovered_records, 2);
        assert_eq!(Metrics::get(&svc.metrics().wal_recovered_records), 2);
        // The recovered profiles plan.
        let spec = PlanSpec::new(Delay::new(2).unwrap());
        let served = svc
            .plan_devices(&["a", "b"], Estimator::Empirical, None, spec)
            .unwrap();
        assert_eq!(served.versions.len(), 2);
    }

    #[test]
    fn degraded_disk_rejects_observes_but_keeps_planning() {
        use pager_profiles::io::{FaultKind, FaultyIo, MemIo};
        let mem = Arc::new(MemIo::new());
        // Let open() succeed, then fail a later WAL operation.
        let io: Arc<dyn StorageIo> = Arc::new(FaultyIo::new(mem, 9, FaultKind::Error, 5));
        let svc = PagerService::try_new(durable_config(io, 0)).unwrap();
        let mut degraded_error = None;
        for t in 0..8u32 {
            match svc.observe(4, &[sighting("a", (t % 4) as usize, f64::from(t))]) {
                Ok(_) => {}
                Err(e) => {
                    degraded_error = Some(e);
                    break;
                }
            }
        }
        let error = degraded_error.expect("fault never fired");
        assert_eq!(error.code(), "degraded");
        assert!(svc.degraded());
        assert_eq!(Metrics::get(&svc.metrics().degraded), 1);
        // Further observes are refused with the same stable code...
        assert_eq!(
            svc.observe(4, &[sighting("a", 0, 99.0)])
                .unwrap_err()
                .code(),
            "degraded"
        );
        // ...while planning keeps serving from the in-memory profiles.
        let spec = PlanSpec::new(Delay::new(2).unwrap());
        let served = svc
            .plan_devices(&["a"], Estimator::Empirical, None, spec)
            .unwrap();
        assert!(served.response.plan.expected_paging >= 1.0);
    }

    #[test]
    fn checkpoints_run_on_the_worker_pool() {
        let mem = Arc::new(pager_profiles::io::MemIo::new());
        let svc = PagerService::try_new(durable_config(
            Arc::<pager_profiles::io::MemIo>::clone(&mem),
            4,
        ))
        .unwrap();
        for t in 0..12u32 {
            svc.observe(4, &[sighting("a", (t % 4) as usize, f64::from(t))])
                .unwrap();
        }
        // The maintenance job runs asynchronously on the pool.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(5);
        while Metrics::get(&svc.metrics().checkpoints) == 0 && std::time::Instant::now() < deadline
        {
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
        assert!(
            Metrics::get(&svc.metrics().checkpoints) >= 1,
            "checkpoint never ran"
        );
        svc.shutdown();
        // The rotated snapshot is the recovery point.
        let names = mem.list(std::path::Path::new("/svc-data")).unwrap();
        assert!(
            names.iter().any(|n| n.starts_with("snapshot.")),
            "{names:?}"
        );
    }

    #[test]
    fn stale_profiles_are_counted() {
        let svc = service();
        svc.observe(3, &[sighting("a", 0, 0.0)]).unwrap();
        let spec = PlanSpec::new(Delay::new(2).unwrap());
        // Query far beyond the staleness half-life (default 256).
        let served = svc
            .plan_devices(&["a"], Estimator::Empirical, Some(10_000.0), spec)
            .unwrap();
        assert_eq!(served.stale_profiles, 1);
        assert_eq!(Metrics::get(&svc.metrics().stale_profiles_served), 1);
    }
}
