//! The planning service façade: cache → coalesce → plan.

use std::sync::Arc;

use pager_core::{Delay, Instance};

use crate::cache::ShardedCache;
use crate::metrics::Metrics;
use crate::planner::{plan, Plan, PlanError, TierPolicy, Variant};
use crate::pool::Dispatcher;

/// The full cache key: quantised probabilities plus everything else
/// that changes the answer. Two requests with equal keys are served
/// the *same* strategy object.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct PlanKey {
    buckets: Vec<u32>,
    devices: usize,
    cells: usize,
    delay: usize,
    variant: Variant,
    grid: u32,
}

/// Service configuration knobs.
#[derive(Debug, Clone, Copy)]
pub struct ServiceConfig {
    /// Planner threads consuming the request queue.
    pub workers: usize,
    /// Cache shards (independent locks).
    pub shards: usize,
    /// Total cached strategies across all shards.
    pub capacity: usize,
    /// Quantisation grid for cache keys: probabilities are bucketed
    /// to multiples of `1/grid`. Coarser grids (smaller values) hit
    /// more, at the cost of serving strategies planned for instances
    /// up to `1/(2·grid)` away per entry.
    pub grid: u32,
    /// Exact-tier dispatch limits.
    pub policy: TierPolicy,
}

impl Default for ServiceConfig {
    fn default() -> ServiceConfig {
        ServiceConfig {
            workers: std::thread::available_parallelism()
                .map_or(4, usize::from)
                .clamp(2, 16),
            shards: 16,
            capacity: 4096,
            grid: 1000,
            policy: TierPolicy::default(),
        }
    }
}

/// Per-request options.
#[derive(Debug, Clone, Copy)]
pub struct PlanOptions {
    /// What kind of plan to compute.
    pub variant: Variant,
    /// Whether this request may read/populate the strategy cache.
    pub cache: bool,
}

impl Default for PlanOptions {
    fn default() -> PlanOptions {
        PlanOptions {
            variant: Variant::Auto,
            cache: true,
        }
    }
}

/// A served plan plus how it was served.
#[derive(Debug, Clone)]
pub struct PlanResponse {
    /// The plan (shared with the cache and any coalesced waiters).
    pub plan: Arc<Plan>,
    /// Served straight from the cache.
    pub cached: bool,
    /// Joined an identical in-flight computation.
    pub coalesced: bool,
}

/// A concurrent strategy-planning service.
///
/// Cheap to share: wrap in an [`Arc`] and call [`PagerService::plan`]
/// from any number of threads.
///
/// # Examples
///
/// ```
/// use pager_service::{PagerService, PlanOptions, ServiceConfig};
/// use pager_core::{Delay, Instance};
///
/// let service = PagerService::new(ServiceConfig::default());
/// let inst = Instance::from_rows(vec![vec![0.5, 0.3, 0.2]]).unwrap();
/// let first = service.plan(&inst, Delay::new(2).unwrap(), PlanOptions::default()).unwrap();
/// let again = service.plan(&inst, Delay::new(2).unwrap(), PlanOptions::default()).unwrap();
/// assert!(!first.cached && again.cached);
/// assert_eq!(first.plan.strategy, again.plan.strategy);
/// ```
pub struct PagerService {
    config: ServiceConfig,
    cache: Arc<ShardedCache<PlanKey, Plan>>,
    metrics: Arc<Metrics>,
    dispatcher: Dispatcher,
}

impl PagerService {
    /// Builds a service and starts its worker pool.
    #[must_use]
    pub fn new(config: ServiceConfig) -> PagerService {
        let cache = Arc::new(ShardedCache::new(config.capacity, config.shards));
        let metrics = Arc::new(Metrics::default());
        let dispatcher = Dispatcher::new(
            config.workers,
            Arc::clone(&cache),
            Arc::clone(&metrics),
            config.policy,
        );
        PagerService {
            config,
            cache,
            metrics,
            dispatcher,
        }
    }

    /// The configuration the service was built with.
    #[must_use]
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// Live metrics (shared; read with `Metrics::get` or dump with
    /// `Metrics::to_json`).
    #[must_use]
    pub fn metrics(&self) -> &Metrics {
        &self.metrics
    }

    /// The cache key and shard fingerprint for a request, exposed so
    /// tests and tools can reason about hit behaviour.
    #[must_use]
    pub fn cache_key(&self, instance: &Instance, delay: Delay, variant: Variant) -> PlanKey {
        PlanKey {
            buckets: instance.quantized_buckets(self.config.grid),
            devices: instance.num_devices(),
            cells: instance.num_cells(),
            delay: delay.get(),
            variant,
            grid: self.config.grid,
        }
    }

    fn fingerprint(&self, instance: &Instance, delay: Delay, variant: Variant) -> u64 {
        let mut fp = instance.fingerprint64(self.config.grid);
        // Fold the non-instance key parts in FNV-style.
        for word in [delay.get() as u64, variant_tag(variant)] {
            for byte in word.to_le_bytes() {
                fp ^= u64::from(byte);
                fp = fp.wrapping_mul(0x0000_0100_0000_01B3);
            }
        }
        fp
    }

    /// Plans a strategy, serving from the cache or an identical
    /// in-flight computation when possible.
    ///
    /// # Errors
    ///
    /// [`PlanError`] on invalid variant parameters, solver limits, or
    /// when called during shutdown.
    pub fn plan(
        &self,
        instance: &Instance,
        delay: Delay,
        options: PlanOptions,
    ) -> Result<PlanResponse, PlanError> {
        Metrics::inc(&self.metrics.requests);
        if !options.cache {
            // Uncached path still runs on the caller thread: the pool
            // exists to dedupe identical work, and uncacheable work
            // cannot be deduped.
            let fresh = plan(instance, delay, options.variant, &self.config.policy)
                .inspect_err(|_| Metrics::inc(&self.metrics.errors))?;
            self.metrics
                .tier_latency(fresh.tier)
                .record(fresh.planning_micros);
            return Ok(PlanResponse {
                plan: Arc::new(fresh),
                cached: false,
                coalesced: false,
            });
        }
        let key = self.cache_key(instance, delay, options.variant);
        let fingerprint = self.fingerprint(instance, delay, options.variant);
        if let Some(hit) = self.cache.get(fingerprint, &key) {
            Metrics::inc(&self.metrics.cache_hits);
            return Ok(PlanResponse {
                plan: hit,
                cached: true,
                coalesced: false,
            });
        }
        Metrics::inc(&self.metrics.cache_misses);
        let (rx, coalesced) =
            self.dispatcher
                .submit(key, fingerprint, instance.clone(), delay, options.variant)?;
        if coalesced {
            Metrics::inc(&self.metrics.coalesced);
        }
        let result = rx
            .recv()
            .map_err(|_| PlanError("worker pool dropped the request".into()))?;
        result.map(|plan| PlanResponse {
            plan,
            cached: false,
            coalesced,
        })
    }

    /// Number of strategies currently cached.
    #[must_use]
    pub fn cached_strategies(&self) -> usize {
        self.cache.len()
    }

    /// Total cache evictions so far.
    #[must_use]
    pub fn cache_evictions(&self) -> u64 {
        self.cache.evictions()
    }

    /// Stops the worker pool. In-flight requests finish; later calls
    /// to [`PagerService::plan`] on the cacheable path fail fast.
    pub fn shutdown(&self) {
        self.dispatcher.shutdown();
    }
}

fn variant_tag(variant: Variant) -> u64 {
    match variant {
        Variant::Auto => 0,
        Variant::Exact => 1 << 32,
        Variant::Greedy => 2 << 32,
        Variant::Bandwidth(b) => (3 << 32) | b as u64,
        Variant::Signature(k) => (4 << 32) | k as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn service() -> PagerService {
        PagerService::new(ServiceConfig {
            workers: 4,
            shards: 4,
            capacity: 64,
            grid: 1000,
            policy: TierPolicy::default(),
        })
    }

    fn inst() -> Instance {
        Instance::from_rows(vec![vec![0.4, 0.3, 0.2, 0.1], vec![0.25, 0.25, 0.25, 0.25]]).unwrap()
    }

    #[test]
    fn second_identical_request_hits_cache() {
        let svc = service();
        let d = Delay::new(2).unwrap();
        let first = svc.plan(&inst(), d, PlanOptions::default()).unwrap();
        assert!(!first.cached);
        let second = svc.plan(&inst(), d, PlanOptions::default()).unwrap();
        assert!(second.cached);
        assert!(Arc::ptr_eq(&first.plan, &second.plan), "same shared plan");
        assert_eq!(Metrics::get(&svc.metrics().cache_hits), 1);
        assert_eq!(Metrics::get(&svc.metrics().cache_misses), 1);
        assert_eq!(Metrics::get(&svc.metrics().requests), 2);
    }

    #[test]
    fn nearby_instances_share_cache_entries() {
        let svc = service();
        let d = Delay::new(2).unwrap();
        let a = Instance::from_rows(vec![vec![0.50001, 0.49999]]).unwrap();
        let b = Instance::from_rows(vec![vec![0.49999, 0.50001]]).unwrap();
        assert!(!svc.plan(&a, d, PlanOptions::default()).unwrap().cached);
        assert!(svc.plan(&b, d, PlanOptions::default()).unwrap().cached);
    }

    #[test]
    fn different_delay_or_variant_miss() {
        let svc = service();
        let d2 = Delay::new(2).unwrap();
        let d3 = Delay::new(3).unwrap();
        svc.plan(&inst(), d2, PlanOptions::default()).unwrap();
        let other_delay = svc.plan(&inst(), d3, PlanOptions::default()).unwrap();
        assert!(!other_delay.cached);
        let forced_greedy = svc
            .plan(
                &inst(),
                d2,
                PlanOptions {
                    variant: Variant::Greedy,
                    cache: true,
                },
            )
            .unwrap();
        assert!(!forced_greedy.cached);
    }

    #[test]
    fn uncached_requests_bypass_cache() {
        let svc = service();
        let d = Delay::new(2).unwrap();
        let opts = PlanOptions {
            variant: Variant::Auto,
            cache: false,
        };
        svc.plan(&inst(), d, opts).unwrap();
        svc.plan(&inst(), d, opts).unwrap();
        assert_eq!(svc.cached_strategies(), 0);
        assert_eq!(Metrics::get(&svc.metrics().cache_hits), 0);
    }

    #[test]
    fn errors_are_counted_and_not_cached() {
        let svc = service();
        let d = Delay::new(2).unwrap();
        let opts = PlanOptions {
            variant: Variant::Signature(99),
            cache: true,
        };
        assert!(svc.plan(&inst(), d, opts).is_err());
        assert!(svc.plan(&inst(), d, opts).is_err());
        assert_eq!(Metrics::get(&svc.metrics().errors), 2);
        assert_eq!(svc.cached_strategies(), 0);
    }

    #[test]
    fn concurrent_identical_requests_coalesce_or_hit() {
        let svc = Arc::new(service());
        let d = Delay::new(3).unwrap();
        // A moderately expensive exact instance so requests overlap.
        let heavy = Instance::uniform(3, 10).unwrap();
        let handles: Vec<_> = (0..16)
            .map(|_| {
                let svc = Arc::clone(&svc);
                let heavy = heavy.clone();
                std::thread::spawn(move || svc.plan(&heavy, d, PlanOptions::default()).unwrap())
            })
            .collect();
        let responses: Vec<PlanResponse> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        let baseline = &responses[0].plan;
        for r in &responses {
            assert_eq!(r.plan.strategy, baseline.strategy);
            assert_eq!(r.plan.expected_paging, baseline.expected_paging);
        }
        let m = svc.metrics();
        assert_eq!(Metrics::get(&m.requests), 16);
        // Every request either hit the cache or missed (and the
        // misses were deduped down to one stored strategy).
        assert_eq!(
            Metrics::get(&m.cache_hits) + Metrics::get(&m.cache_misses),
            16
        );
        assert_eq!(svc.cached_strategies(), 1);
    }

    #[test]
    fn shutdown_fails_fast() {
        let svc = service();
        svc.shutdown();
        let err = svc.plan(&inst(), Delay::new(2).unwrap(), PlanOptions::default());
        assert!(err.is_err());
    }
}
