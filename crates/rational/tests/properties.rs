//! Property-based tests for `rational` against `i128` oracles and
//! algebraic laws that hold at any magnitude.

use proptest::prelude::*;
use rational::{BigInt, Ratio};

fn big(v: i128) -> BigInt {
    BigInt::from(v)
}

proptest! {
    #[test]
    fn add_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        prop_assert_eq!(big(a as i128) + big(b as i128), big(a as i128 + b as i128));
    }

    #[test]
    fn sub_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        prop_assert_eq!(big(a as i128) - big(b as i128), big(a as i128 - b as i128));
    }

    #[test]
    fn mul_matches_i128(a in any::<i64>(), b in any::<i64>()) {
        prop_assert_eq!(big(a as i128) * big(b as i128), big(a as i128 * b as i128));
    }

    #[test]
    fn divrem_matches_i128(a in any::<i64>(), b in any::<i64>().prop_filter("nonzero", |b| *b != 0)) {
        let (q, r) = big(a as i128).div_rem(&big(b as i128));
        prop_assert_eq!(q, big(a as i128 / b as i128));
        prop_assert_eq!(r, big(a as i128 % b as i128));
    }

    #[test]
    fn divrem_reconstructs_large(a in proptest::collection::vec(any::<u32>(), 1..12),
                                 b in proptest::collection::vec(any::<u32>(), 1..6),
                                 neg_a in any::<bool>(), neg_b in any::<bool>()) {
        // Build operands limb-by-limb via shifts to reach multi-limb sizes.
        let build = |limbs: &[u32], neg: bool| {
            let mut x = BigInt::zero();
            for &l in limbs.iter().rev() {
                x = x.shl_bits(32) + BigInt::from(l);
            }
            if neg { -x } else { x }
        };
        let a = build(&a, neg_a);
        let b = build(&b, neg_b);
        prop_assume!(!b.is_zero());
        let (q, r) = a.div_rem(&b);
        prop_assert_eq!(&q * &b + &r, a.clone());
        prop_assert!(r.abs() < b.abs());
        // Remainder takes the dividend's sign (or is zero).
        if !r.is_zero() {
            prop_assert_eq!(r.is_negative(), a.is_negative());
        }
    }

    #[test]
    fn string_round_trip(a in proptest::collection::vec(any::<u32>(), 0..10), neg in any::<bool>()) {
        let mut x = BigInt::zero();
        for &l in &a {
            x = x.shl_bits(32) + BigInt::from(l);
        }
        if neg { x = -x; }
        let s = x.to_string();
        let back: BigInt = s.parse().unwrap();
        prop_assert_eq!(back, x);
    }

    #[test]
    fn gcd_divides_both(a in any::<i64>(), b in any::<i64>()) {
        let g = big(a as i128).gcd(&big(b as i128));
        if !g.is_zero() {
            prop_assert!((big(a as i128) % &g).is_zero());
            prop_assert!((big(b as i128) % &g).is_zero());
            prop_assert!(!g.is_negative());
        } else {
            prop_assert_eq!(a, 0);
            prop_assert_eq!(b, 0);
        }
    }

    #[test]
    fn shifts_invert(a in any::<u64>(), bits in 0u64..200) {
        let x = BigInt::from(a);
        prop_assert_eq!(x.shl_bits(bits).shr_bits(bits), x);
    }

    #[test]
    fn ratio_field_laws(an in -1000i64..1000, ad in 1i64..50,
                        bn in -1000i64..1000, bd in 1i64..50,
                        cn in -1000i64..1000, cd in 1i64..50) {
        let a = Ratio::from_fraction(an, ad);
        let b = Ratio::from_fraction(bn, bd);
        let c = Ratio::from_fraction(cn, cd);
        // commutativity, associativity, distributivity
        prop_assert_eq!(&a + &b, &b + &a);
        prop_assert_eq!(&a * &b, &b * &a);
        prop_assert_eq!((&a + &b) + &c, &a + (&b + &c));
        prop_assert_eq!((&a * &b) * &c, &a * (&b * &c));
        prop_assert_eq!(&a * (&b + &c), &(&a * &b) + &(&a * &c));
        // additive inverse
        prop_assert_eq!(&a + &(-&a), Ratio::zero());
        // multiplicative inverse
        if !b.is_zero() {
            prop_assert_eq!(&(&a / &b) * &b, a.clone());
        }
    }

    #[test]
    fn ratio_order_agrees_with_f64(an in -10_000i64..10_000, ad in 1i64..1000,
                                   bn in -10_000i64..10_000, bd in 1i64..1000) {
        let a = Ratio::from_fraction(an, ad);
        let b = Ratio::from_fraction(bn, bd);
        let fa = an as f64 / ad as f64;
        let fb = bn as f64 / bd as f64;
        if (fa - fb).abs() > 1e-9 {
            prop_assert_eq!(a < b, fa < fb);
        }
    }

    #[test]
    fn ratio_from_f64_is_exact(v in -1.0e12f64..1.0e12) {
        let q = Ratio::from_f64(v).unwrap();
        prop_assert_eq!(q.to_f64(), v);
    }

    #[test]
    fn floor_ceil_bracket(an in -10_000i64..10_000, ad in 1i64..100) {
        let a = Ratio::from_fraction(an, ad);
        let f = Ratio::from(a.floor());
        let c = Ratio::from(a.ceil());
        prop_assert!(f <= a && a <= c);
        prop_assert!(&c - &f <= Ratio::one());
        if a.is_integer() {
            prop_assert_eq!(f, c);
        }
    }

    #[test]
    fn pow_is_repeated_mul(an in -20i64..20, ad in 1i64..10, e in 0i32..6) {
        let a = Ratio::from_fraction(an, ad);
        let mut expect = Ratio::one();
        for _ in 0..e {
            expect = &expect * &a;
        }
        prop_assert_eq!(a.pow(e), expect);
    }
}
