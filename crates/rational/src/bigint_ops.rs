//! Arithmetic on [`BigInt`]: addition, subtraction, multiplication
//! (schoolbook with a Karatsuba path for large operands), division with
//! remainder (Knuth Algorithm D), shifts, exponentiation and GCD.

use crate::bigint::{BigInt, Sign};
use core::cmp::Ordering;
use core::ops::{Add, Div, Mul, Neg, Rem, Shl, Shr, Sub};

const BASE_BITS: u32 = 32;
/// Operand size (in limbs) above which multiplication switches to Karatsuba.
const KARATSUBA_THRESHOLD: usize = 32;

// ---------------------------------------------------------------------------
// magnitude helpers
// ---------------------------------------------------------------------------

/// `a + b` on magnitudes.
fn mag_add(a: &[u32], b: &[u32]) -> Vec<u32> {
    let (long, short) = if a.len() >= b.len() { (a, b) } else { (b, a) };
    let mut out = Vec::with_capacity(long.len() + 1);
    let mut carry = 0u64;
    for i in 0..long.len() {
        let sum = u64::from(long[i]) + u64::from(short.get(i).copied().unwrap_or(0)) + carry;
        out.push(sum as u32);
        carry = sum >> BASE_BITS;
    }
    if carry != 0 {
        out.push(carry as u32);
    }
    out
}

/// `a - b` on magnitudes; requires `a >= b`.
fn mag_sub(a: &[u32], b: &[u32]) -> Vec<u32> {
    debug_assert!(BigInt::cmp_mag(a, b) != Ordering::Less);
    let mut out = Vec::with_capacity(a.len());
    let mut borrow = 0i64;
    for i in 0..a.len() {
        let diff = i64::from(a[i]) - i64::from(b.get(i).copied().unwrap_or(0)) - borrow;
        if diff < 0 {
            out.push((diff + (1i64 << BASE_BITS)) as u32);
            borrow = 1;
        } else {
            out.push(diff as u32);
            borrow = 0;
        }
    }
    debug_assert_eq!(borrow, 0);
    while out.last() == Some(&0) {
        out.pop();
    }
    out
}

/// Schoolbook `a * b` on magnitudes.
fn mag_mul_schoolbook(a: &[u32], b: &[u32]) -> Vec<u32> {
    if a.is_empty() || b.is_empty() {
        return Vec::new();
    }
    let mut out = vec![0u32; a.len() + b.len()];
    for (i, &ai) in a.iter().enumerate() {
        if ai == 0 {
            continue;
        }
        let mut carry = 0u64;
        let ai = u64::from(ai);
        for (j, &bj) in b.iter().enumerate() {
            let t = ai * u64::from(bj) + u64::from(out[i + j]) + carry;
            out[i + j] = t as u32;
            carry = t >> BASE_BITS;
        }
        let mut k = i + b.len();
        while carry != 0 {
            let t = u64::from(out[k]) + carry;
            out[k] = t as u32;
            carry = t >> BASE_BITS;
            k += 1;
        }
    }
    while out.last() == Some(&0) {
        out.pop();
    }
    out
}

/// Karatsuba `a * b` on magnitudes, recursing until the schoolbook
/// threshold.
fn mag_mul(a: &[u32], b: &[u32]) -> Vec<u32> {
    if a.len().min(b.len()) < KARATSUBA_THRESHOLD {
        return mag_mul_schoolbook(a, b);
    }
    let split = a.len().max(b.len()) / 2;
    let (a0, a1) = a.split_at(split.min(a.len()));
    let (b0, b1) = b.split_at(split.min(b.len()));
    // a = a1*B^s + a0, b = b1*B^s + b0
    let z0 = mag_mul(a0, b0);
    let z2 = mag_mul(a1, b1);
    let a01 = mag_add(a0, a1);
    let b01 = mag_add(b0, b1);
    let z1 = mag_sub(&mag_sub(&mag_mul(&a01, &b01), &z2), &z0);
    // result = z2*B^(2s) + z1*B^s + z0
    let mut out = z0;
    add_shifted(&mut out, &z1, split);
    add_shifted(&mut out, &z2, 2 * split);
    while out.last() == Some(&0) {
        out.pop();
    }
    out
}

/// `acc += other << (limbs * 32)` on magnitudes.
fn add_shifted(acc: &mut Vec<u32>, other: &[u32], limbs: usize) {
    if other.is_empty() {
        return;
    }
    if acc.len() < limbs + other.len() {
        acc.resize(limbs + other.len(), 0);
    }
    let mut carry = 0u64;
    for (i, &o) in other.iter().enumerate() {
        let t = u64::from(acc[limbs + i]) + u64::from(o) + carry;
        acc[limbs + i] = t as u32;
        carry = t >> BASE_BITS;
    }
    let mut k = limbs + other.len();
    while carry != 0 {
        if k == acc.len() {
            acc.push(0);
        }
        let t = u64::from(acc[k]) + carry;
        acc[k] = t as u32;
        carry = t >> BASE_BITS;
        k += 1;
    }
}

/// Left-shifts a magnitude by `bits`.
fn mag_shl(a: &[u32], bits: u64) -> Vec<u32> {
    if a.is_empty() {
        return Vec::new();
    }
    let limb_shift = (bits / 32) as usize;
    let bit_shift = (bits % 32) as u32;
    let mut out = vec![0u32; limb_shift];
    if bit_shift == 0 {
        out.extend_from_slice(a);
    } else {
        let mut carry = 0u32;
        for &limb in a {
            out.push((limb << bit_shift) | carry);
            carry = limb >> (32 - bit_shift);
        }
        if carry != 0 {
            out.push(carry);
        }
    }
    while out.last() == Some(&0) {
        out.pop();
    }
    out
}

/// Right-shifts a magnitude by `bits` (arithmetic on the magnitude).
fn mag_shr(a: &[u32], bits: u64) -> Vec<u32> {
    let limb_shift = (bits / 32) as usize;
    if limb_shift >= a.len() {
        return Vec::new();
    }
    let bit_shift = (bits % 32) as u32;
    let mut out = Vec::with_capacity(a.len() - limb_shift);
    if bit_shift == 0 {
        out.extend_from_slice(&a[limb_shift..]);
    } else {
        let body = &a[limb_shift..];
        for i in 0..body.len() {
            let high = body.get(i + 1).copied().unwrap_or(0);
            out.push((body[i] >> bit_shift) | (high << (32 - bit_shift)));
        }
    }
    while out.last() == Some(&0) {
        out.pop();
    }
    out
}

/// Divides a magnitude by a single limb; returns (quotient, remainder).
fn mag_divrem_limb(a: &[u32], d: u32) -> (Vec<u32>, u32) {
    debug_assert!(d != 0);
    let mut quot = vec![0u32; a.len()];
    let mut rem = 0u64;
    for i in (0..a.len()).rev() {
        let cur = (rem << BASE_BITS) | u64::from(a[i]);
        quot[i] = (cur / u64::from(d)) as u32;
        rem = cur % u64::from(d);
    }
    while quot.last() == Some(&0) {
        quot.pop();
    }
    (quot, rem as u32)
}

/// Knuth Algorithm D: divides magnitudes, returning (quotient, remainder).
///
/// Requires `b` non-empty. Handles the single-limb divisor fast path.
fn mag_divrem(a: &[u32], b: &[u32]) -> (Vec<u32>, Vec<u32>) {
    assert!(!b.is_empty(), "division by zero magnitude");
    match BigInt::cmp_mag(a, b) {
        Ordering::Less => return (Vec::new(), a.to_vec()),
        Ordering::Equal => return (vec![1], Vec::new()),
        Ordering::Greater => {}
    }
    if b.len() == 1 {
        let (q, r) = mag_divrem_limb(a, b[0]);
        return (q, if r == 0 { Vec::new() } else { vec![r] });
    }

    // D1: normalise so the top limb of the divisor has its high bit set.
    let shift = u64::from(b.last().unwrap().leading_zeros());
    let u = mag_shl(a, shift);
    let v = mag_shl(b, shift);
    let n = v.len();
    let m = u.len() - n;
    let mut u = {
        let mut t = u;
        t.push(0); // u has m + n + 1 limbs
        t
    };
    let v_hi = u64::from(v[n - 1]);
    let v_lo = u64::from(v[n - 2]);
    let mut q = vec![0u32; m + 1];

    for j in (0..=m).rev() {
        // D3: estimate q_hat from the top two limbs of the current window.
        let top = (u64::from(u[j + n]) << BASE_BITS) | u64::from(u[j + n - 1]);
        let mut q_hat = top / v_hi;
        let mut r_hat = top % v_hi;
        while q_hat >= (1u64 << BASE_BITS)
            || q_hat * v_lo > ((r_hat << BASE_BITS) | u64::from(u[j + n - 2]))
        {
            q_hat -= 1;
            r_hat += v_hi;
            if r_hat >= (1u64 << BASE_BITS) {
                break;
            }
        }
        // D4: multiply-subtract q_hat * v from u[j .. j+n].
        let mut borrow = 0i64;
        let mut carry = 0u64;
        for i in 0..n {
            let prod = q_hat * u64::from(v[i]) + carry;
            carry = prod >> BASE_BITS;
            let sub = i64::from(u[j + i]) - i64::from(prod as u32) - borrow;
            if sub < 0 {
                u[j + i] = (sub + (1i64 << BASE_BITS)) as u32;
                borrow = 1;
            } else {
                u[j + i] = sub as u32;
                borrow = 0;
            }
        }
        let sub = i64::from(u[j + n]) - i64::from(carry as u32) - borrow;
        if sub < 0 {
            // D6: q_hat was one too large — add back.
            u[j + n] = (sub + (1i64 << BASE_BITS)) as u32;
            q_hat -= 1;
            let mut carry2 = 0u64;
            for i in 0..n {
                let t = u64::from(u[j + i]) + u64::from(v[i]) + carry2;
                u[j + i] = t as u32;
                carry2 = t >> BASE_BITS;
            }
            u[j + n] = (u64::from(u[j + n]) + carry2) as u32;
        } else {
            u[j + n] = sub as u32;
        }
        q[j] = q_hat as u32;
    }

    while q.last() == Some(&0) {
        q.pop();
    }
    u.truncate(n);
    let rem = mag_shr(&u, shift);
    (q, rem)
}

// ---------------------------------------------------------------------------
// signed operations on BigInt
// ---------------------------------------------------------------------------

impl BigInt {
    fn add_signed(&self, other: &BigInt) -> BigInt {
        match (self.sign, other.sign) {
            (Sign::Zero, _) => other.clone(),
            (_, Sign::Zero) => self.clone(),
            (a, b) if a == b => BigInt::from_sign_mag(a, mag_add(&self.mag, &other.mag)),
            _ => match BigInt::cmp_mag(&self.mag, &other.mag) {
                Ordering::Equal => BigInt::zero(),
                Ordering::Greater => {
                    BigInt::from_sign_mag(self.sign, mag_sub(&self.mag, &other.mag))
                }
                Ordering::Less => BigInt::from_sign_mag(other.sign, mag_sub(&other.mag, &self.mag)),
            },
        }
    }

    fn mul_signed(&self, other: &BigInt) -> BigInt {
        BigInt::from_sign_mag(
            self.sign.combine(other.sign),
            mag_mul(&self.mag, &other.mag),
        )
    }

    /// Divides with remainder, truncating toward zero (like Rust's `/`
    /// and `%` on primitives): `self = q * other + r` with
    /// `|r| < |other|` and `r` sharing `self`'s sign.
    ///
    /// # Panics
    ///
    /// Panics if `other` is zero.
    #[must_use]
    pub fn div_rem(&self, other: &BigInt) -> (BigInt, BigInt) {
        assert!(!other.is_zero(), "BigInt division by zero");
        let (q_mag, r_mag) = mag_divrem(&self.mag, &other.mag);
        let q_sign = self.sign.combine(other.sign);
        let q = BigInt::from_sign_mag(if q_mag.is_empty() { Sign::Zero } else { q_sign }, q_mag);
        let r = BigInt::from_sign_mag(
            if r_mag.is_empty() {
                Sign::Zero
            } else {
                self.sign
            },
            r_mag,
        );
        q.debug_check();
        r.debug_check();
        (q, r)
    }

    /// Greatest common divisor of the absolute values (always
    /// non-negative; `gcd(0, x) = |x|`).
    ///
    /// ```
    /// use rational::BigInt;
    /// assert_eq!(BigInt::from(-12).gcd(&BigInt::from(18)), BigInt::from(6));
    /// ```
    #[must_use]
    pub fn gcd(&self, other: &BigInt) -> BigInt {
        let mut a = self.abs();
        let mut b = other.abs();
        while !b.is_zero() {
            let r = a.div_rem(&b).1.abs();
            a = b;
            b = r;
        }
        a
    }

    /// Raises to a non-negative integer power (square-and-multiply).
    ///
    /// `0^0 == 1` by convention.
    ///
    /// ```
    /// use rational::BigInt;
    /// assert_eq!(BigInt::from(3).pow(4), BigInt::from(81));
    /// ```
    #[must_use]
    pub fn pow(&self, mut exp: u32) -> BigInt {
        let mut base = self.clone();
        let mut acc = BigInt::one();
        while exp > 0 {
            if exp & 1 == 1 {
                acc = acc.mul_signed(&base);
            }
            exp >>= 1;
            if exp > 0 {
                base = base.mul_signed(&base);
            }
        }
        acc
    }

    /// Multiplies by `2^bits`.
    #[must_use]
    pub fn shl_bits(&self, bits: u64) -> BigInt {
        BigInt::from_sign_mag(self.sign, mag_shl(&self.mag, bits))
    }

    /// Divides by `2^bits`, truncating toward zero.
    #[must_use]
    pub fn shr_bits(&self, bits: u64) -> BigInt {
        let mag = mag_shr(&self.mag, bits);
        BigInt::from_sign_mag(
            if mag.is_empty() {
                Sign::Zero
            } else {
                self.sign
            },
            mag,
        )
    }
}

// ---------------------------------------------------------------------------
// operator impls: by-ref is canonical; by-value forwards
// ---------------------------------------------------------------------------

macro_rules! forward_binop {
    ($trait:ident, $method:ident) => {
        impl $trait<BigInt> for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&BigInt> for BigInt {
            type Output = BigInt;
            fn $method(self, rhs: &BigInt) -> BigInt {
                (&self).$method(rhs)
            }
        }
        impl $trait<BigInt> for &BigInt {
            type Output = BigInt;
            fn $method(self, rhs: BigInt) -> BigInt {
                self.$method(&rhs)
            }
        }
    };
}

impl Add<&BigInt> for &BigInt {
    type Output = BigInt;
    fn add(self, rhs: &BigInt) -> BigInt {
        self.add_signed(rhs)
    }
}
forward_binop!(Add, add);

impl Sub<&BigInt> for &BigInt {
    type Output = BigInt;
    fn sub(self, rhs: &BigInt) -> BigInt {
        self.add_signed(&(-rhs.clone()))
    }
}
forward_binop!(Sub, sub);

impl Mul<&BigInt> for &BigInt {
    type Output = BigInt;
    fn mul(self, rhs: &BigInt) -> BigInt {
        self.mul_signed(rhs)
    }
}
forward_binop!(Mul, mul);

impl Div<&BigInt> for &BigInt {
    type Output = BigInt;
    fn div(self, rhs: &BigInt) -> BigInt {
        self.div_rem(rhs).0
    }
}
forward_binop!(Div, div);

impl Rem<&BigInt> for &BigInt {
    type Output = BigInt;
    fn rem(self, rhs: &BigInt) -> BigInt {
        self.div_rem(rhs).1
    }
}
forward_binop!(Rem, rem);

impl Neg for BigInt {
    type Output = BigInt;
    fn neg(mut self) -> BigInt {
        self.sign = self.sign.negate();
        self
    }
}

impl Neg for &BigInt {
    type Output = BigInt;
    fn neg(self) -> BigInt {
        -self.clone()
    }
}

impl Shl<u64> for &BigInt {
    type Output = BigInt;
    fn shl(self, bits: u64) -> BigInt {
        self.shl_bits(bits)
    }
}

impl Shr<u64> for &BigInt {
    type Output = BigInt;
    fn shr(self, bits: u64) -> BigInt {
        self.shr_bits(bits)
    }
}

impl core::iter::Sum for BigInt {
    fn sum<I: Iterator<Item = BigInt>>(iter: I) -> BigInt {
        iter.fold(BigInt::zero(), |acc, x| &acc + &x)
    }
}

impl<'a> core::iter::Sum<&'a BigInt> for BigInt {
    fn sum<I: Iterator<Item = &'a BigInt>>(iter: I) -> BigInt {
        iter.fold(BigInt::zero(), |acc, x| &acc + x)
    }
}

impl core::iter::Product for BigInt {
    fn product<I: Iterator<Item = BigInt>>(iter: I) -> BigInt {
        iter.fold(BigInt::one(), |acc, x| &acc * &x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn bi(v: i128) -> BigInt {
        BigInt::from(v)
    }

    #[test]
    fn add_sub_small() {
        assert_eq!(bi(2) + bi(3), bi(5));
        assert_eq!(bi(-2) + bi(3), bi(1));
        assert_eq!(bi(2) + bi(-3), bi(-1));
        assert_eq!(bi(-2) + bi(-3), bi(-5));
        assert_eq!(bi(5) - bi(5), BigInt::zero());
        assert_eq!(bi(0) + bi(0), BigInt::zero());
    }

    #[test]
    fn add_carries_across_limbs() {
        let a = BigInt::from(u64::MAX);
        let one = BigInt::one();
        let sum = &a + &one;
        assert_eq!(sum.to_string(), "18446744073709551616");
        assert_eq!(&sum - &one, a);
    }

    #[test]
    fn mul_small_signs() {
        assert_eq!(bi(6) * bi(7), bi(42));
        assert_eq!(bi(-6) * bi(7), bi(-42));
        assert_eq!(bi(-6) * bi(-7), bi(42));
        assert_eq!(bi(6) * bi(0), BigInt::zero());
    }

    #[test]
    fn mul_matches_i128() {
        let cases: [(i128, i128); 6] = [
            (123_456_789, 987_654_321),
            (-1, i64::MAX as i128),
            (i64::MAX as i128, i64::MAX as i128),
            (u64::MAX as i128, i32::MAX as i128),
            (0, 55),
            (-33, -44),
        ];
        for (a, b) in cases {
            assert_eq!(bi(a) * bi(b), bi(a * b), "{a} * {b}");
        }
    }

    #[test]
    fn karatsuba_agrees_with_schoolbook() {
        // Operands big enough to trip the Karatsuba threshold.
        let a: Vec<u32> = (1..=100u32).collect();
        let b: Vec<u32> = (1..=90u32).map(|x| x.wrapping_mul(0x9E37_79B9)).collect();
        let school = mag_mul_schoolbook(&a, &b);
        let kara = mag_mul(&a, &b);
        assert_eq!(school, kara);
    }

    #[test]
    fn divrem_truncates_toward_zero() {
        assert_eq!(bi(7).div_rem(&bi(2)), (bi(3), bi(1)));
        assert_eq!(bi(-7).div_rem(&bi(2)), (bi(-3), bi(-1)));
        assert_eq!(bi(7).div_rem(&bi(-2)), (bi(-3), bi(1)));
        assert_eq!(bi(-7).div_rem(&bi(-2)), (bi(3), bi(-1)));
    }

    #[test]
    fn divrem_reconstructs() {
        let pairs: [(i128, i128); 5] = [
            (i128::from(u64::MAX) * 7 + 5, 13),
            (1 << 100, (1 << 40) + 3),
            (999_999_999_999_999_999, 1_000_000_007),
            (12, 1 << 90),
            (-(1 << 100), (1 << 33) - 1),
        ];
        for (a, b) in pairs {
            let (q, r) = bi(a).div_rem(&bi(b));
            assert_eq!(&q * &bi(b) + &r, bi(a), "{a} / {b}");
            assert!(r.abs() < bi(b).abs());
        }
    }

    #[test]
    #[should_panic(expected = "division by zero")]
    fn div_by_zero_panics() {
        let _ = bi(1).div_rem(&BigInt::zero());
    }

    #[test]
    fn knuth_d_add_back_case() {
        // Constructed to exercise the rare D6 add-back branch: the
        // canonical trigger family from Knuth (base b = 2^32):
        // u = [0, 0, 2^31], v = [1, 2^31].
        let u = BigInt::from_sign_mag(Sign::Plus, vec![0, 0, 1 << 31]);
        let v = BigInt::from_sign_mag(Sign::Plus, vec![1, 1 << 31]);
        let (q, r) = u.div_rem(&v);
        assert_eq!(&q * &v + &r, u);
        assert!(r < v);
    }

    #[test]
    fn gcd_matches_small() {
        assert_eq!(bi(48).gcd(&bi(36)), bi(12));
        assert_eq!(bi(-48).gcd(&bi(36)), bi(12));
        assert_eq!(bi(0).gcd(&bi(5)), bi(5));
        assert_eq!(bi(5).gcd(&bi(0)), bi(5));
        let big = BigInt::from(10u8).pow(30);
        assert_eq!(big.gcd(&(&big * &bi(7))), big);
    }

    #[test]
    fn pow_and_shifts() {
        assert_eq!(bi(2).pow(0), bi(1));
        assert_eq!(bi(2).pow(10), bi(1024));
        assert_eq!(bi(0).pow(0), bi(1));
        assert_eq!(bi(10).pow(20).to_string(), "100000000000000000000");
        assert_eq!(bi(1).shl_bits(100).shr_bits(100), bi(1));
        assert_eq!(bi(5).shl_bits(3), bi(40));
        assert_eq!(bi(-40).shr_bits(3), bi(-5));
        assert_eq!(bi(1).shr_bits(1), bi(0));
    }

    #[test]
    fn sum_product_iters() {
        let xs = [bi(1), bi(2), bi(3), bi(4)];
        let s: BigInt = xs.iter().sum();
        assert_eq!(s, bi(10));
        let p: BigInt = xs.into_iter().product();
        assert_eq!(p, bi(24));
    }
}
