//! Conversions between [`BigInt`] and primitive types, including exact
//! `f64` decomposition.

use crate::bigint::{BigInt, Sign};
use core::fmt;

/// Error returned by the fallible `TryFrom<&BigInt>` conversions when the
/// value does not fit the target primitive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TryFromBigIntError;

impl fmt::Display for TryFromBigIntError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "big integer out of range for target type")
    }
}

impl std::error::Error for TryFromBigIntError {}

impl BigInt {
    /// Converts to `f64`, rounding to nearest. Values whose magnitude
    /// exceeds `f64::MAX` become `±inf`.
    #[must_use]
    pub fn to_f64(&self) -> f64 {
        if self.is_zero() {
            return 0.0;
        }
        // Take the top 64 bits of the magnitude and scale.
        let bits = self.bits();
        let mut acc: f64 = 0.0;
        // At most the top three limbs matter for a 53-bit mantissa.
        let n = self.mag.len();
        let top = n.saturating_sub(3);
        for i in (top..n).rev() {
            acc = acc * 4_294_967_296.0 + f64::from(self.mag[i]);
        }
        let exp = (top as i64) * 32;
        let mut val = acc * 2f64.powi(exp.clamp(i64::from(i32::MIN), i64::from(i32::MAX)) as i32);
        let _ = bits;
        if self.sign == Sign::Minus {
            val = -val;
        }
        val
    }

    /// Builds a `BigInt` from a finite `f64` that is an exact integer.
    ///
    /// Returns `None` if the input is NaN, infinite, or has a fractional
    /// part.
    ///
    /// ```
    /// use rational::BigInt;
    /// assert_eq!(BigInt::from_f64_exact(1e15), Some(BigInt::from(10u64.pow(15))));
    /// assert_eq!(BigInt::from_f64_exact(0.5), None);
    /// ```
    #[must_use]
    pub fn from_f64_exact(v: f64) -> Option<BigInt> {
        // lint:allow(no-float-eq): exact integrality test on IEEE semantics
        if !v.is_finite() || v.fract() != 0.0 {
            return None;
        }
        // lint:allow(no-float-eq): exact zero test, ±0.0 both map to zero
        if v == 0.0 {
            return Some(BigInt::zero());
        }
        let neg = v < 0.0;
        let bits = v.abs().to_bits();
        let exponent = ((bits >> 52) & 0x7FF) as i64 - 1023 - 52;
        let mantissa = if (bits >> 52) & 0x7FF == 0 {
            bits & ((1u64 << 52) - 1)
        } else {
            (bits & ((1u64 << 52) - 1)) | (1u64 << 52)
        };
        let m = BigInt::from(mantissa);
        let out = if exponent >= 0 {
            m.shl_bits(exponent as u64)
        } else {
            // fract() == 0 guarantees the low bits are zero.
            m.shr_bits((-exponent) as u64)
        };
        Some(if neg { -out } else { out })
    }

    /// Converts to `i64` if it fits.
    #[must_use]
    pub fn to_i64(&self) -> Option<i64> {
        i64::try_from(self).ok()
    }

    /// Converts to `u64` if it fits and is non-negative.
    #[must_use]
    pub fn to_u64(&self) -> Option<u64> {
        u64::try_from(self).ok()
    }

    /// Converts to `i128` if it fits.
    #[must_use]
    pub fn to_i128(&self) -> Option<i128> {
        i128::try_from(self).ok()
    }

    fn mag_as_u128(&self) -> Option<u128> {
        if self.mag.len() > 4 {
            return None;
        }
        let mut v: u128 = 0;
        for &limb in self.mag.iter().rev() {
            v = (v << 32) | u128::from(limb);
        }
        Some(v)
    }
}

impl TryFrom<&BigInt> for u64 {
    type Error = TryFromBigIntError;
    fn try_from(x: &BigInt) -> Result<u64, TryFromBigIntError> {
        if x.sign == Sign::Minus {
            return Err(TryFromBigIntError);
        }
        let m = x.mag_as_u128().ok_or(TryFromBigIntError)?;
        u64::try_from(m).map_err(|_| TryFromBigIntError)
    }
}

impl TryFrom<&BigInt> for i64 {
    type Error = TryFromBigIntError;
    fn try_from(x: &BigInt) -> Result<i64, TryFromBigIntError> {
        let m = x.mag_as_u128().ok_or(TryFromBigIntError)?;
        match x.sign {
            Sign::Zero => Ok(0),
            Sign::Plus => i64::try_from(m).map_err(|_| TryFromBigIntError),
            Sign::Minus => {
                if m <= i64::MIN.unsigned_abs().into() {
                    Ok((m as i128).wrapping_neg() as i64)
                } else {
                    Err(TryFromBigIntError)
                }
            }
        }
    }
}

impl TryFrom<&BigInt> for i128 {
    type Error = TryFromBigIntError;
    fn try_from(x: &BigInt) -> Result<i128, TryFromBigIntError> {
        let m = x.mag_as_u128().ok_or(TryFromBigIntError)?;
        match x.sign {
            Sign::Zero => Ok(0),
            Sign::Plus => i128::try_from(m).map_err(|_| TryFromBigIntError),
            Sign::Minus => {
                if m <= i128::MIN.unsigned_abs() {
                    Ok(m.wrapping_neg() as i128)
                } else {
                    Err(TryFromBigIntError)
                }
            }
        }
    }
}

impl TryFrom<&BigInt> for usize {
    type Error = TryFromBigIntError;
    fn try_from(x: &BigInt) -> Result<usize, TryFromBigIntError> {
        u64::try_from(x)
            .ok()
            .and_then(|v| usize::try_from(v).ok())
            .ok_or(TryFromBigIntError)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn to_f64_small() {
        assert_eq!(BigInt::from(0u8).to_f64(), 0.0);
        assert_eq!(BigInt::from(42).to_f64(), 42.0);
        assert_eq!(BigInt::from(-42).to_f64(), -42.0);
        assert_eq!(BigInt::from(u64::MAX).to_f64(), u64::MAX as f64);
    }

    #[test]
    fn to_f64_large() {
        let x = BigInt::from(10u8).pow(100);
        let f = x.to_f64();
        assert!((f - 1e100).abs() / 1e100 < 1e-12);
        assert_eq!((-x).to_f64(), -f);
    }

    #[test]
    fn from_f64_exact_round_trip() {
        for v in [0.0, 1.0, -1.0, 2f64.powi(60), -(2f64.powi(80)), 1e15] {
            let b = BigInt::from_f64_exact(v).unwrap();
            assert_eq!(b.to_f64(), v, "{v}");
        }
        assert_eq!(BigInt::from_f64_exact(f64::NAN), None);
        assert_eq!(BigInt::from_f64_exact(f64::INFINITY), None);
        assert_eq!(BigInt::from_f64_exact(1.25), None);
    }

    #[test]
    fn try_into_primitives() {
        assert_eq!(i64::try_from(&BigInt::from(i64::MAX)), Ok(i64::MAX));
        assert_eq!(i64::try_from(&BigInt::from(i64::MIN)), Ok(i64::MIN));
        assert!(i64::try_from(&(BigInt::from(i64::MAX) + BigInt::one())).is_err());
        assert!(u64::try_from(&BigInt::from(-1)).is_err());
        assert_eq!(u64::try_from(&BigInt::from(u64::MAX)), Ok(u64::MAX));
        assert_eq!(i128::try_from(&BigInt::from(i128::MIN)), Ok(i128::MIN));
        assert!(i128::try_from(&(BigInt::from(10u8).pow(60))).is_err());
        assert_eq!(usize::try_from(&BigInt::from(7u8)), Ok(7usize));
    }

    #[test]
    fn helper_getters() {
        assert_eq!(BigInt::from(7).to_i64(), Some(7));
        assert_eq!(BigInt::from(-7).to_u64(), None);
        assert_eq!(BigInt::from(7).to_i128(), Some(7));
    }
}
