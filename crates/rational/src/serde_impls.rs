//! Optional Serde support (`feature = "serde"`).
//!
//! [`BigInt`] serialises as its decimal string; [`Ratio`] as the
//! `"num/den"` (or plain integer) string accepted by its `FromStr`.
//! String forms keep arbitrary precision intact across any format.

use crate::{BigInt, Ratio};
use serde::de::Error as _;
use serde::{Deserialize, Deserializer, Serialize, Serializer};

impl Serialize for BigInt {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.to_string())
    }
}

impl<'de> Deserialize<'de> for BigInt {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<BigInt, D::Error> {
        let text = String::deserialize(deserializer)?;
        text.parse().map_err(D::Error::custom)
    }
}

impl Serialize for Ratio {
    fn serialize<S: Serializer>(&self, serializer: S) -> Result<S::Ok, S::Error> {
        serializer.serialize_str(&self.to_string())
    }
}

impl<'de> Deserialize<'de> for Ratio {
    fn deserialize<D: Deserializer<'de>>(deserializer: D) -> Result<Ratio, D::Error> {
        let text = String::deserialize(deserializer)?;
        text.parse().map_err(D::Error::custom)
    }
}

#[cfg(test)]
mod tests {
    use crate::{BigInt, Ratio};

    #[test]
    fn bigint_json_round_trip() {
        let x: BigInt = "123456789012345678901234567890".parse().unwrap();
        let json = serde_json::to_string(&x).unwrap();
        assert_eq!(json, "\"123456789012345678901234567890\"");
        let back: BigInt = serde_json::from_str(&json).unwrap();
        assert_eq!(back, x);
        let neg: BigInt = serde_json::from_str("\"-42\"").unwrap();
        assert_eq!(neg, BigInt::from(-42));
    }

    #[test]
    fn ratio_json_round_trip() {
        for q in [
            Ratio::from_fraction(320, 317),
            Ratio::from_fraction(-5, 3),
            Ratio::from_integer(7),
            Ratio::zero(),
        ] {
            let json = serde_json::to_string(&q).unwrap();
            let back: Ratio = serde_json::from_str(&json).unwrap();
            assert_eq!(back, q, "{json}");
        }
    }

    #[test]
    fn bad_payloads_rejected() {
        assert!(serde_json::from_str::<BigInt>("\"12a\"").is_err());
        assert!(serde_json::from_str::<Ratio>("\"1/0\"").is_err());
        assert!(serde_json::from_str::<Ratio>("3.5").is_err()); // must be a string
    }
}
