//! JSON conversions (via the workspace's [`jsonio`] crate).
//!
//! [`BigInt`] serialises as its decimal string; [`Ratio`] as the
//! `"num/den"` (or plain integer) string accepted by its `FromStr`.
//! String forms keep arbitrary precision intact across any format.

use crate::{BigInt, Ratio};
use jsonio::Value;

impl BigInt {
    /// Renders as a JSON string of the decimal value.
    #[must_use]
    pub fn to_json(&self) -> Value {
        Value::Str(self.to_string())
    }

    /// Parses from a JSON string of a decimal value.
    ///
    /// # Errors
    ///
    /// A message when the value is not a string or fails to parse.
    pub fn from_json(value: &Value) -> Result<BigInt, String> {
        let text = value
            .as_str()
            .ok_or_else(|| format!("BigInt must be a JSON string, got {value}"))?;
        text.parse()
            .map_err(|e| format!("invalid BigInt {text:?}: {e:?}"))
    }
}

impl Ratio {
    /// Renders as a JSON string (`"num/den"` or a plain integer).
    #[must_use]
    pub fn to_json(&self) -> Value {
        Value::Str(self.to_string())
    }

    /// Parses from a JSON string accepted by [`Ratio`]'s `FromStr`.
    ///
    /// # Errors
    ///
    /// A message when the value is not a string or fails to parse.
    pub fn from_json(value: &Value) -> Result<Ratio, String> {
        let text = value
            .as_str()
            .ok_or_else(|| format!("Ratio must be a JSON string, got {value}"))?;
        text.parse()
            .map_err(|e| format!("invalid Ratio {text:?}: {e:?}"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bigint_json_round_trip() {
        let x: BigInt = "123456789012345678901234567890".parse().unwrap();
        let json = x.to_json().to_string();
        assert_eq!(json, "\"123456789012345678901234567890\"");
        let back = BigInt::from_json(&jsonio::parse(&json).unwrap()).unwrap();
        assert_eq!(back, x);
        let neg = BigInt::from_json(&jsonio::parse("\"-42\"").unwrap()).unwrap();
        assert_eq!(neg, BigInt::from(-42));
    }

    #[test]
    fn ratio_json_round_trip() {
        for q in [
            Ratio::from_fraction(320, 317),
            Ratio::from_fraction(-5, 3),
            Ratio::from_integer(7),
            Ratio::zero(),
        ] {
            let json = q.to_json().to_string();
            let back = Ratio::from_json(&jsonio::parse(&json).unwrap()).unwrap();
            assert_eq!(back, q, "{json}");
        }
    }

    #[test]
    fn bad_payloads_rejected() {
        assert!(BigInt::from_json(&jsonio::parse("\"12a\"").unwrap()).is_err());
        assert!(Ratio::from_json(&jsonio::parse("\"1/0\"").unwrap()).is_err());
        // Must be a string, not a bare number.
        assert!(Ratio::from_json(&jsonio::parse("3.5").unwrap()).is_err());
    }
}
