//! The [`Ratio`] type: exact, always-normalised rational numbers.

use crate::bigint::BigInt;
use crate::parse::ParseBigIntError;
use core::cmp::Ordering;
use core::fmt;
use core::ops::{Add, Div, Mul, Neg, Sub};
use core::str::FromStr;

/// An exact rational number `num / den`.
///
/// Invariants: `den > 0`, `gcd(|num|, den) == 1`, and zero is `0/1`.
///
/// # Examples
///
/// ```
/// use rational::Ratio;
///
/// let third = Ratio::from_fraction(1, 3);
/// let sum = &third + &third + &third;
/// assert_eq!(sum, Ratio::from_integer(1));
/// assert!(third < Ratio::from_fraction(1, 2));
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Ratio {
    num: BigInt,
    den: BigInt,
}

/// Error returned when a string cannot be parsed as a [`Ratio`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRatioError {
    msg: String,
}

impl fmt::Display for ParseRatioError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid rational literal: {}", self.msg)
    }
}

impl std::error::Error for ParseRatioError {}

impl From<ParseBigIntError> for ParseRatioError {
    fn from(e: ParseBigIntError) -> Self {
        ParseRatioError { msg: e.to_string() }
    }
}

impl Ratio {
    /// Creates `num / den`, normalising sign and common factors.
    ///
    /// # Panics
    ///
    /// Panics if `den` is zero.
    #[must_use]
    pub fn new(num: BigInt, den: BigInt) -> Ratio {
        assert!(!den.is_zero(), "Ratio with zero denominator");
        let (num, den) = if den.is_negative() {
            (-num, -den)
        } else {
            (num, den)
        };
        if num.is_zero() {
            return Ratio {
                num: BigInt::zero(),
                den: BigInt::one(),
            };
        }
        let g = num.gcd(&den);
        Ratio {
            num: &num / &g,
            den: &den / &g,
        }
    }

    /// The rational zero.
    #[must_use]
    pub fn zero() -> Ratio {
        Ratio {
            num: BigInt::zero(),
            den: BigInt::one(),
        }
    }

    /// The rational one.
    #[must_use]
    pub fn one() -> Ratio {
        Ratio {
            num: BigInt::one(),
            den: BigInt::one(),
        }
    }

    /// Creates an integer-valued rational.
    #[must_use]
    pub fn from_integer(v: i64) -> Ratio {
        Ratio {
            num: BigInt::from(v),
            den: BigInt::one(),
        }
    }

    /// Creates `num / den` from machine integers.
    ///
    /// # Panics
    ///
    /// Panics if `den == 0`.
    #[must_use]
    pub fn from_fraction(num: i64, den: i64) -> Ratio {
        Ratio::new(BigInt::from(num), BigInt::from(den))
    }

    /// Converts a finite `f64` to the **exact** rational it represents
    /// (every finite double is a dyadic rational).
    ///
    /// Returns `None` for NaN or infinities.
    ///
    /// ```
    /// use rational::Ratio;
    /// assert_eq!(Ratio::from_f64(0.5), Some(Ratio::from_fraction(1, 2)));
    /// assert_eq!(Ratio::from_f64(f64::NAN), None);
    /// ```
    #[must_use]
    pub fn from_f64(v: f64) -> Option<Ratio> {
        if !v.is_finite() {
            return None;
        }
        // lint:allow(no-float-eq): exact zero test, ±0.0 both map to zero
        if v == 0.0 {
            return Some(Ratio::zero());
        }
        let bits = v.abs().to_bits();
        let raw_exp = ((bits >> 52) & 0x7FF) as i64;
        let (mantissa, exponent) = if raw_exp == 0 {
            (bits & ((1u64 << 52) - 1), -1074i64)
        } else {
            ((bits & ((1u64 << 52) - 1)) | (1u64 << 52), raw_exp - 1075)
        };
        let m = BigInt::from(mantissa);
        let r = if exponent >= 0 {
            Ratio::new(m.shl_bits(exponent as u64), BigInt::one())
        } else {
            Ratio::new(m, BigInt::one().shl_bits((-exponent) as u64))
        };
        Some(if v < 0.0 { -r } else { r })
    }

    /// Approximates as `f64` (rounds via numerator/denominator floats with
    /// a scale correction for huge operands).
    #[must_use]
    pub fn to_f64(&self) -> f64 {
        let nb = self.num.bits() as i64;
        let db = self.den.bits() as i64;
        // Rescale so both parts convert without overflow/underflow.
        let excess = (nb.max(db) - 900).max(0);
        let n = self.num.shr_bits(excess as u64).to_f64();
        let d = self.den.shr_bits(excess as u64).to_f64();
        // lint:allow(no-float-eq): exact zero sentinel from shr_bits underflow
        if d == 0.0 {
            // Denominator vanished under shifting: the value is enormous.
            return if self.num.is_negative() {
                f64::NEG_INFINITY
            } else {
                f64::INFINITY
            };
        }
        n / d
    }

    /// The (reduced) numerator.
    #[must_use]
    pub fn numer(&self) -> &BigInt {
        &self.num
    }

    /// The (reduced, positive) denominator.
    #[must_use]
    pub fn denom(&self) -> &BigInt {
        &self.den
    }

    /// Returns `true` iff the value is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.num.is_zero()
    }

    /// Returns `true` iff the value is strictly negative.
    #[must_use]
    pub fn is_negative(&self) -> bool {
        self.num.is_negative()
    }

    /// Returns `true` iff the value is strictly positive.
    #[must_use]
    pub fn is_positive(&self) -> bool {
        self.num.is_positive()
    }

    /// Returns `true` iff the value is an integer.
    #[must_use]
    pub fn is_integer(&self) -> bool {
        self.den.is_one()
    }

    /// Absolute value.
    #[must_use]
    pub fn abs(&self) -> Ratio {
        Ratio {
            num: self.num.abs(),
            den: self.den.clone(),
        }
    }

    /// Multiplicative inverse.
    ///
    /// # Panics
    ///
    /// Panics if the value is zero.
    #[must_use]
    pub fn recip(&self) -> Ratio {
        assert!(!self.is_zero(), "reciprocal of zero");
        Ratio::new(self.den.clone(), self.num.clone())
    }

    /// Raises to an integer power (negative exponents invert).
    ///
    /// # Panics
    ///
    /// Panics when raising zero to a negative power.
    #[must_use]
    pub fn pow(&self, exp: i32) -> Ratio {
        if exp >= 0 {
            Ratio {
                num: self.num.pow(exp as u32),
                den: self.den.pow(exp as u32),
            }
        } else {
            self.recip().pow(-exp)
        }
    }

    /// Formats the value as a decimal string with exactly `digits`
    /// fractional digits, rounding half away from zero.
    ///
    /// ```
    /// use rational::Ratio;
    /// assert_eq!(Ratio::from_fraction(1, 3).to_decimal_string(4), "0.3333");
    /// assert_eq!(Ratio::from_fraction(-1, 8).to_decimal_string(2), "-0.13");
    /// assert_eq!(Ratio::from_fraction(5, 2).to_decimal_string(0), "3");
    /// ```
    #[must_use]
    pub fn to_decimal_string(&self, digits: usize) -> String {
        let negative = self.is_negative();
        let scale = BigInt::from(10u8).pow(digits as u32);
        // round(|num|·10^d / den) with half-away-from-zero.
        let scaled = &self.num.abs() * &scale;
        let (q, r) = scaled.div_rem(&self.den);
        let double_r = &r + &r;
        let rounded = if double_r >= self.den {
            q + BigInt::one()
        } else {
            q
        };
        let digits_str = rounded.to_string();
        let (int_part, frac_part) = if digits == 0 {
            (digits_str.clone(), String::new())
        } else if digits_str.len() <= digits {
            ("0".to_string(), format!("{digits_str:0>digits$}"))
        } else {
            let cut = digits_str.len() - digits;
            (digits_str[..cut].to_string(), digits_str[cut..].to_string())
        };
        let sign = if negative && (int_part != "0" || frac_part.bytes().any(|b| b != b'0')) {
            "-"
        } else {
            ""
        };
        if frac_part.is_empty() {
            format!("{sign}{int_part}")
        } else {
            format!("{sign}{int_part}.{frac_part}")
        }
    }

    /// Largest integer `<= self`.
    #[must_use]
    pub fn floor(&self) -> BigInt {
        let (q, r) = self.num.div_rem(&self.den);
        if r.is_negative() {
            q - BigInt::one()
        } else {
            q
        }
    }

    /// Smallest integer `>= self`.
    #[must_use]
    pub fn ceil(&self) -> BigInt {
        let (q, r) = self.num.div_rem(&self.den);
        if r.is_positive() {
            q + BigInt::one()
        } else {
            q
        }
    }

    fn add_inner(&self, other: &Ratio) -> Ratio {
        Ratio::new(
            &(&self.num * &other.den) + &(&other.num * &self.den),
            &self.den * &other.den,
        )
    }

    fn mul_inner(&self, other: &Ratio) -> Ratio {
        Ratio::new(&self.num * &other.num, &self.den * &other.den)
    }
}

impl Default for Ratio {
    fn default() -> Ratio {
        Ratio::zero()
    }
}

impl From<BigInt> for Ratio {
    fn from(v: BigInt) -> Ratio {
        Ratio {
            num: v,
            den: BigInt::one(),
        }
    }
}

impl From<i64> for Ratio {
    fn from(v: i64) -> Ratio {
        Ratio::from_integer(v)
    }
}

impl From<u64> for Ratio {
    fn from(v: u64) -> Ratio {
        Ratio {
            num: BigInt::from(v),
            den: BigInt::one(),
        }
    }
}

impl From<usize> for Ratio {
    fn from(v: usize) -> Ratio {
        Ratio {
            num: BigInt::from(v),
            den: BigInt::one(),
        }
    }
}

impl PartialOrd for Ratio {
    fn partial_cmp(&self, other: &Ratio) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Ratio {
    fn cmp(&self, other: &Ratio) -> Ordering {
        // Denominators are positive, so cross-multiplication preserves order.
        (&self.num * &other.den).cmp(&(&other.num * &self.den))
    }
}

impl fmt::Display for Ratio {
    /// Formats as `num/den`, or just `num` for integers.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.den.is_one() {
            write!(f, "{}", self.num)
        } else {
            write!(f, "{}/{}", self.num, self.den)
        }
    }
}

impl FromStr for Ratio {
    type Err = ParseRatioError;

    /// Parses `"a/b"`, a plain integer `"a"`, or a decimal `"a.b"`.
    fn from_str(s: &str) -> Result<Ratio, ParseRatioError> {
        if let Some((n, d)) = s.split_once('/') {
            let num: BigInt = n.trim().parse()?;
            let den: BigInt = d.trim().parse()?;
            if den.is_zero() {
                return Err(ParseRatioError {
                    msg: "zero denominator".into(),
                });
            }
            return Ok(Ratio::new(num, den));
        }
        if let Some((int_part, frac_part)) = s.split_once('.') {
            let negative = int_part.trim_start().starts_with('-');
            let int: BigInt = if int_part.is_empty() || int_part == "-" || int_part == "+" {
                BigInt::zero()
            } else {
                int_part.parse()?
            };
            if frac_part.is_empty() || !frac_part.bytes().all(|b| b.is_ascii_digit()) {
                return Err(ParseRatioError {
                    msg: format!("bad fractional part {frac_part:?}"),
                });
            }
            let frac: BigInt = frac_part.parse()?;
            let scale = BigInt::from(10u8).pow(frac_part.len() as u32);
            let int_abs = int.abs();
            let combined = &int_abs * &scale + frac;
            let r = Ratio::new(combined, scale);
            return Ok(if negative { -r } else { r });
        }
        let num: BigInt = s.trim().parse()?;
        Ok(Ratio::from(num))
    }
}

macro_rules! forward_ratio_binop {
    ($trait:ident, $method:ident) => {
        impl $trait<Ratio> for Ratio {
            type Output = Ratio;
            fn $method(self, rhs: Ratio) -> Ratio {
                (&self).$method(&rhs)
            }
        }
        impl $trait<&Ratio> for Ratio {
            type Output = Ratio;
            fn $method(self, rhs: &Ratio) -> Ratio {
                (&self).$method(rhs)
            }
        }
        impl $trait<Ratio> for &Ratio {
            type Output = Ratio;
            fn $method(self, rhs: Ratio) -> Ratio {
                self.$method(&rhs)
            }
        }
    };
}

impl Add<&Ratio> for &Ratio {
    type Output = Ratio;
    fn add(self, rhs: &Ratio) -> Ratio {
        self.add_inner(rhs)
    }
}
forward_ratio_binop!(Add, add);

impl Sub<&Ratio> for &Ratio {
    type Output = Ratio;
    fn sub(self, rhs: &Ratio) -> Ratio {
        self.add_inner(&-rhs.clone())
    }
}
forward_ratio_binop!(Sub, sub);

impl Mul<&Ratio> for &Ratio {
    type Output = Ratio;
    fn mul(self, rhs: &Ratio) -> Ratio {
        self.mul_inner(rhs)
    }
}
forward_ratio_binop!(Mul, mul);

impl Div<&Ratio> for &Ratio {
    type Output = Ratio;
    /// # Panics
    ///
    /// Panics if `rhs` is zero.
    fn div(self, rhs: &Ratio) -> Ratio {
        self.mul_inner(&rhs.recip())
    }
}
forward_ratio_binop!(Div, div);

impl Neg for Ratio {
    type Output = Ratio;
    fn neg(self) -> Ratio {
        Ratio {
            num: -self.num,
            den: self.den,
        }
    }
}

impl Neg for &Ratio {
    type Output = Ratio;
    fn neg(self) -> Ratio {
        -self.clone()
    }
}

impl core::iter::Sum for Ratio {
    fn sum<I: Iterator<Item = Ratio>>(iter: I) -> Ratio {
        iter.fold(Ratio::zero(), |acc, x| &acc + &x)
    }
}

impl<'a> core::iter::Sum<&'a Ratio> for Ratio {
    fn sum<I: Iterator<Item = &'a Ratio>>(iter: I) -> Ratio {
        iter.fold(Ratio::zero(), |acc, x| &acc + x)
    }
}

impl core::iter::Product for Ratio {
    fn product<I: Iterator<Item = Ratio>>(iter: I) -> Ratio {
        iter.fold(Ratio::one(), |acc, x| &acc * &x)
    }
}

impl<'a> core::iter::Product<&'a Ratio> for Ratio {
    fn product<I: Iterator<Item = &'a Ratio>>(iter: I) -> Ratio {
        iter.fold(Ratio::one(), |acc, x| &acc * x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(n: i64, d: i64) -> Ratio {
        Ratio::from_fraction(n, d)
    }

    #[test]
    fn normalisation() {
        assert_eq!(r(2, 4), r(1, 2));
        assert_eq!(r(-2, -4), r(1, 2));
        assert_eq!(r(2, -4), r(-1, 2));
        assert_eq!(r(0, 5), Ratio::zero());
        assert_eq!(r(0, -5).denom(), &BigInt::one());
    }

    #[test]
    #[should_panic(expected = "zero denominator")]
    fn zero_denominator_panics() {
        let _ = Ratio::new(BigInt::one(), BigInt::zero());
    }

    #[test]
    fn field_arithmetic() {
        assert_eq!(r(1, 2) + r(1, 3), r(5, 6));
        assert_eq!(r(1, 2) - r(1, 3), r(1, 6));
        assert_eq!(r(2, 3) * r(3, 4), r(1, 2));
        assert_eq!(r(1, 2) / r(1, 4), r(2, 1));
        assert_eq!(-r(1, 2), r(-1, 2));
        assert_eq!(r(1, 2) + r(-1, 2), Ratio::zero());
    }

    #[test]
    fn ordering_is_total() {
        assert!(r(1, 3) < r(1, 2));
        assert!(r(-1, 2) < r(-1, 3));
        assert!(r(-1, 2) < Ratio::zero());
        assert!(r(7, 7) == Ratio::one());
        let mut v = vec![r(3, 4), r(-1, 2), r(2, 3), Ratio::zero()];
        v.sort();
        assert_eq!(v, vec![r(-1, 2), Ratio::zero(), r(2, 3), r(3, 4)]);
    }

    #[test]
    fn floor_ceil() {
        assert_eq!(r(7, 2).floor(), BigInt::from(3));
        assert_eq!(r(7, 2).ceil(), BigInt::from(4));
        assert_eq!(r(-7, 2).floor(), BigInt::from(-4));
        assert_eq!(r(-7, 2).ceil(), BigInt::from(-3));
        assert_eq!(r(4, 2).floor(), BigInt::from(2));
        assert_eq!(r(4, 2).ceil(), BigInt::from(2));
    }

    #[test]
    fn powers() {
        assert_eq!(r(2, 3).pow(2), r(4, 9));
        assert_eq!(r(2, 3).pow(-2), r(9, 4));
        assert_eq!(r(2, 3).pow(0), Ratio::one());
        assert_eq!(r(-1, 2).pow(3), r(-1, 8));
    }

    #[test]
    fn f64_round_trip_dyadics() {
        for v in [0.0, 0.5, -0.75, 1.0, 3.25, 2f64.powi(-30), 1048576.0] {
            let q = Ratio::from_f64(v).unwrap();
            assert_eq!(q.to_f64(), v, "{v}");
        }
        assert!(Ratio::from_f64(f64::INFINITY).is_none());
    }

    #[test]
    fn f64_of_third_is_not_third() {
        // 1/3 is not dyadic: from_f64 must return the *exact* double.
        let q = Ratio::from_f64(1.0 / 3.0).unwrap();
        assert_ne!(q, r(1, 3));
        assert!((&q - &r(1, 3)).abs() < r(1, 1 << 52));
    }

    #[test]
    fn parse_forms() {
        assert_eq!("3/4".parse::<Ratio>().unwrap(), r(3, 4));
        assert_eq!("-3/4".parse::<Ratio>().unwrap(), r(-3, 4));
        assert_eq!("3/-4".parse::<Ratio>().unwrap(), r(-3, 4));
        assert_eq!("5".parse::<Ratio>().unwrap(), r(5, 1));
        assert_eq!("0.25".parse::<Ratio>().unwrap(), r(1, 4));
        assert_eq!("-0.2".parse::<Ratio>().unwrap(), r(-1, 5));
        assert_eq!("-.5".parse::<Ratio>().unwrap(), r(-1, 2));
        assert!("1/0".parse::<Ratio>().is_err());
        assert!("a/b".parse::<Ratio>().is_err());
        assert!("1.x".parse::<Ratio>().is_err());
    }

    #[test]
    fn display_round_trips() {
        for q in [r(22, 7), r(-5, 3), r(4, 1), Ratio::zero()] {
            let s = q.to_string();
            assert_eq!(s.parse::<Ratio>().unwrap(), q, "{s}");
        }
        assert_eq!(r(4, 2).to_string(), "2");
        assert_eq!(r(1, 2).to_string(), "1/2");
    }

    #[test]
    fn sums_and_products() {
        let xs = [r(1, 2), r(1, 3), r(1, 6)];
        let s: Ratio = xs.iter().sum();
        assert_eq!(s, Ratio::one());
        let p: Ratio = xs.iter().product();
        assert_eq!(p, r(1, 36));
    }

    #[test]
    fn decimal_string_rendering() {
        assert_eq!(r(1, 2).to_decimal_string(3), "0.500");
        assert_eq!(r(2, 3).to_decimal_string(4), "0.6667");
        assert_eq!(r(-2, 3).to_decimal_string(4), "-0.6667");
        assert_eq!(r(22, 7).to_decimal_string(2), "3.14");
        assert_eq!(r(317, 49).to_decimal_string(6), "6.469388");
        assert_eq!(Ratio::zero().to_decimal_string(2), "0.00");
        assert_eq!(r(1, 2).to_decimal_string(0), "1"); // half away from zero
        assert_eq!(r(-1, 2).to_decimal_string(0), "-1");
        assert_eq!(r(1, 1000).to_decimal_string(2), "0.00");
        assert_eq!(r(-1, 1000).to_decimal_string(2), "0.00"); // rounds to zero: no sign
    }

    #[test]
    fn paper_lower_bound_fraction() {
        // Section 4.3: heuristic 320/49 vs optimal 317/49.
        let h = r(320, 49);
        let o = r(317, 49);
        assert_eq!(&h / &o, r(320, 317));
        assert!(&h / &o < r(4, 3));
    }

    #[test]
    fn to_f64_huge_values() {
        let huge = Ratio::from(BigInt::from(10u8).pow(400));
        assert!(huge.to_f64().is_infinite());
        let tiny = huge.recip();
        assert!(tiny.to_f64() >= 0.0 && tiny.to_f64() < 1e-300);
    }
}
