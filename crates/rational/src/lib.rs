//! Exact arbitrary-precision arithmetic: [`BigInt`] and [`Ratio`].
//!
//! This crate is the numerical substrate of the `conference-call` workspace.
//! The NP-hardness reductions of Bar-Noy & Malewicz (Section 3 of the paper)
//! distinguish expected-paging values that differ by `O(1/S^2)` where `S` is
//! a sum of Partition sizes, and the Section 4.3 lower bound is the exact
//! fraction `320/317`. Floating point cannot certify either, so the
//! workspace computes expected paging exactly over the rationals.
//!
//! The crate is self-contained (no dependencies) and implements:
//!
//! * [`BigInt`] — sign-magnitude arbitrary-precision integers over `u32`
//!   limbs, with schoolbook and Karatsuba multiplication, Knuth Algorithm D
//!   division, binary GCD, exponentiation, radix-10 parsing and printing;
//! * [`Ratio`] — always-normalised exact rationals with total ordering,
//!   field arithmetic, exact conversion from `f64`, and rounding back.
//!
//! # Examples
//!
//! ```
//! use rational::{BigInt, Ratio};
//!
//! let a = BigInt::from(10u32).pow(40);
//! let b = &a + &BigInt::from(1u32);
//! assert_eq!((&b - &a).to_string(), "1");
//!
//! // The Section 4.3 lower-bound ratio, exactly.
//! let heuristic = Ratio::new(BigInt::from(320), BigInt::from(49));
//! let optimal = Ratio::new(BigInt::from(317), BigInt::from(49));
//! assert_eq!((&heuristic / &optimal).to_string(), "320/317");
//! ```

#![forbid(unsafe_code)]
// Index-based loops are the clearer idiom in limb- and DP-style
// arithmetic where several arrays are co-indexed.
#![allow(clippy::needless_range_loop)]
#![warn(missing_docs)]

mod bigint;
mod bigint_ops;
mod convert;
mod json_impls;
mod parse;
mod ratio;

pub use bigint::{BigInt, Sign};
pub use parse::ParseBigIntError;
pub use ratio::{ParseRatioError, Ratio};

/// Computes the greatest common divisor of two non-negative `u64` values.
///
/// Used internally for limb-level fast paths; exposed because the workload
/// and hardness crates need small-integer gcds too.
///
/// ```
/// assert_eq!(rational::gcd_u64(12, 18), 6);
/// assert_eq!(rational::gcd_u64(0, 7), 7);
/// ```
#[must_use]
pub fn gcd_u64(mut a: u64, mut b: u64) -> u64 {
    if a == 0 {
        return b;
    }
    if b == 0 {
        return a;
    }
    let shift = (a | b).trailing_zeros();
    a >>= a.trailing_zeros();
    loop {
        b >>= b.trailing_zeros();
        if a > b {
            core::mem::swap(&mut a, &mut b);
        }
        b -= a;
        if b == 0 {
            return a << shift;
        }
    }
}

/// Computes the least common multiple of two `u64` values.
///
/// # Panics
///
/// Panics if the result overflows `u64`.
///
/// ```
/// assert_eq!(rational::lcm_u64(4, 6), 12);
/// ```
#[must_use]
pub fn lcm_u64(a: u64, b: u64) -> u64 {
    if a == 0 || b == 0 {
        return 0;
    }
    a / gcd_u64(a, b) * b
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gcd_basics() {
        assert_eq!(gcd_u64(0, 0), 0);
        assert_eq!(gcd_u64(1, 1), 1);
        assert_eq!(gcd_u64(48, 36), 12);
        assert_eq!(gcd_u64(17, 13), 1);
        assert_eq!(gcd_u64(u64::MAX, u64::MAX), u64::MAX);
    }

    #[test]
    fn lcm_basics() {
        assert_eq!(lcm_u64(0, 5), 0);
        assert_eq!(lcm_u64(21, 6), 42);
        assert_eq!(lcm_u64(7, 7), 7);
    }
}
