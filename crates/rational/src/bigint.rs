//! The [`BigInt`] type: sign-magnitude arbitrary-precision integers.
//!
//! The magnitude is a little-endian vector of `u32` limbs with no trailing
//! zero limbs; zero is represented by an empty limb vector and
//! [`Sign::Zero`]. All arithmetic lives in [`crate::bigint_ops`]; this
//! module defines the representation, invariants, constructors, ordering
//! and small accessors.

use core::cmp::Ordering;

/// Sign of a [`BigInt`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Sign {
    /// Strictly negative.
    Minus,
    /// Exactly zero (the magnitude is empty).
    Zero,
    /// Strictly positive.
    Plus,
}

impl Sign {
    /// Returns the opposite sign (`Zero` stays `Zero`).
    #[must_use]
    pub fn negate(self) -> Sign {
        match self {
            Sign::Minus => Sign::Plus,
            Sign::Zero => Sign::Zero,
            Sign::Plus => Sign::Minus,
        }
    }

    /// Sign of the product of two signs.
    #[must_use]
    pub fn combine(self, other: Sign) -> Sign {
        match (self, other) {
            (Sign::Zero, _) | (_, Sign::Zero) => Sign::Zero,
            (Sign::Plus, Sign::Plus) | (Sign::Minus, Sign::Minus) => Sign::Plus,
            _ => Sign::Minus,
        }
    }
}

/// An arbitrary-precision signed integer.
///
/// # Examples
///
/// ```
/// use rational::BigInt;
///
/// let x: BigInt = "123456789012345678901234567890".parse()?;
/// let y = &x * &x;
/// assert!(y > x);
/// # Ok::<(), rational::ParseBigIntError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct BigInt {
    pub(crate) sign: Sign,
    /// Little-endian `u32` limbs; empty iff `sign == Sign::Zero`;
    /// the last limb is never zero.
    pub(crate) mag: Vec<u32>,
}

impl BigInt {
    /// The integer zero.
    #[must_use]
    pub fn zero() -> BigInt {
        BigInt {
            sign: Sign::Zero,
            mag: Vec::new(),
        }
    }

    /// The integer one.
    #[must_use]
    pub fn one() -> BigInt {
        BigInt {
            sign: Sign::Plus,
            mag: vec![1],
        }
    }

    /// Builds a `BigInt` from a sign and little-endian limbs, normalising
    /// trailing zero limbs and the zero sign.
    #[must_use]
    pub(crate) fn from_sign_mag(sign: Sign, mut mag: Vec<u32>) -> BigInt {
        while mag.last() == Some(&0) {
            mag.pop();
        }
        if mag.is_empty() {
            return BigInt::zero();
        }
        debug_assert!(sign != Sign::Zero, "nonzero magnitude with Zero sign");
        BigInt { sign, mag }
    }

    /// Returns `true` iff the value is zero.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        self.sign == Sign::Zero
    }

    /// Returns `true` iff the value is one.
    #[must_use]
    pub fn is_one(&self) -> bool {
        self.sign == Sign::Plus && self.mag == [1]
    }

    /// Returns `true` iff the value is strictly negative.
    #[must_use]
    pub fn is_negative(&self) -> bool {
        self.sign == Sign::Minus
    }

    /// Returns `true` iff the value is strictly positive.
    #[must_use]
    pub fn is_positive(&self) -> bool {
        self.sign == Sign::Plus
    }

    /// Returns `true` iff the value is even.
    #[must_use]
    pub fn is_even(&self) -> bool {
        self.mag.first().copied().unwrap_or(0) & 1 == 0
    }

    /// The sign of this integer.
    #[must_use]
    pub fn sign(&self) -> Sign {
        self.sign
    }

    /// Absolute value.
    #[must_use]
    pub fn abs(&self) -> BigInt {
        BigInt {
            sign: if self.sign == Sign::Minus {
                Sign::Plus
            } else {
                self.sign
            },
            mag: self.mag.clone(),
        }
    }

    /// Number of bits in the magnitude (`0` for zero).
    #[must_use]
    pub fn bits(&self) -> u64 {
        match self.mag.last() {
            None => 0,
            Some(&top) => (self.mag.len() as u64 - 1) * 32 + u64::from(32 - top.leading_zeros()),
        }
    }

    /// Compares magnitudes, ignoring signs.
    #[must_use]
    pub(crate) fn cmp_mag(a: &[u32], b: &[u32]) -> Ordering {
        if a.len() != b.len() {
            return a.len().cmp(&b.len());
        }
        for (x, y) in a.iter().rev().zip(b.iter().rev()) {
            match x.cmp(y) {
                Ordering::Equal => {}
                non_eq => return non_eq,
            }
        }
        Ordering::Equal
    }

    /// Asserts representation invariants (debug builds only).
    pub(crate) fn debug_check(&self) {
        debug_assert!(
            self.mag.last() != Some(&0),
            "trailing zero limb: {:?}",
            self.mag
        );
        debug_assert_eq!(self.mag.is_empty(), self.sign == Sign::Zero);
    }
}

impl Default for BigInt {
    fn default() -> BigInt {
        BigInt::zero()
    }
}

impl PartialOrd for BigInt {
    fn partial_cmp(&self, other: &BigInt) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for BigInt {
    fn cmp(&self, other: &BigInt) -> Ordering {
        let rank = |s: Sign| match s {
            Sign::Minus => 0_u8,
            Sign::Zero => 1,
            Sign::Plus => 2,
        };
        match rank(self.sign).cmp(&rank(other.sign)) {
            Ordering::Equal => {}
            non_eq => return non_eq,
        }
        match self.sign {
            Sign::Zero => Ordering::Equal,
            Sign::Plus => BigInt::cmp_mag(&self.mag, &other.mag),
            Sign::Minus => BigInt::cmp_mag(&other.mag, &self.mag),
        }
    }
}

macro_rules! impl_from_unsigned {
    ($($t:ty),*) => {$(
        impl From<$t> for BigInt {
            fn from(v: $t) -> BigInt {
                let mut v = v as u128;
                let mut mag = Vec::new();
                while v != 0 {
                    mag.push((v & 0xFFFF_FFFF) as u32);
                    v >>= 32;
                }
                BigInt::from_sign_mag(if mag.is_empty() { Sign::Zero } else { Sign::Plus }, mag)
            }
        }
    )*};
}

macro_rules! impl_from_signed {
    ($($t:ty),*) => {$(
        impl From<$t> for BigInt {
            fn from(v: $t) -> BigInt {
                let neg = v < 0;
                // Two's-complement-safe absolute value.
                let mut m = (v as i128).unsigned_abs();
                let mut mag = Vec::new();
                while m != 0 {
                    mag.push((m & 0xFFFF_FFFF) as u32);
                    m >>= 32;
                }
                let sign = if mag.is_empty() {
                    Sign::Zero
                } else if neg {
                    Sign::Minus
                } else {
                    Sign::Plus
                };
                BigInt::from_sign_mag(sign, mag)
            }
        }
    )*};
}

impl_from_unsigned!(u8, u16, u32, u64, u128, usize);
impl_from_signed!(i8, i16, i32, i64, i128, isize);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_representation() {
        let z = BigInt::zero();
        assert!(z.is_zero());
        assert!(!z.is_positive());
        assert!(!z.is_negative());
        assert_eq!(z.bits(), 0);
        assert_eq!(BigInt::from(0u32), z);
        assert_eq!(BigInt::from(0i64), z);
        assert_eq!(BigInt::default(), z);
    }

    #[test]
    fn from_primitives_round_sign() {
        assert!(BigInt::from(5u8).is_positive());
        assert!(BigInt::from(-5i8).is_negative());
        assert_eq!(BigInt::from(i64::MIN).to_string(), i64::MIN.to_string());
        assert_eq!(BigInt::from(u128::MAX).to_string(), u128::MAX.to_string());
        assert_eq!(BigInt::from(i128::MIN).to_string(), i128::MIN.to_string());
    }

    #[test]
    fn ordering_across_signs() {
        let neg = BigInt::from(-7);
        let zero = BigInt::zero();
        let pos = BigInt::from(7);
        assert!(neg < zero);
        assert!(zero < pos);
        assert!(neg < pos);
        assert!(BigInt::from(-10) < BigInt::from(-2));
        assert!(BigInt::from(10) > BigInt::from(2));
    }

    #[test]
    fn ordering_by_limb_count() {
        let small = BigInt::from(u32::MAX);
        let big = BigInt::from(u64::from(u32::MAX) + 1);
        assert!(small < big);
        assert!(big.abs() > small.abs());
    }

    #[test]
    fn bits_counts() {
        assert_eq!(BigInt::from(1u32).bits(), 1);
        assert_eq!(BigInt::from(2u32).bits(), 2);
        assert_eq!(BigInt::from(255u32).bits(), 8);
        assert_eq!(BigInt::from(256u32).bits(), 9);
        assert_eq!(BigInt::from(u64::MAX).bits(), 64);
    }

    #[test]
    fn parity() {
        assert!(BigInt::zero().is_even());
        assert!(!BigInt::from(1u32).is_even());
        assert!(BigInt::from(-2).is_even());
    }

    #[test]
    fn sign_algebra() {
        assert_eq!(Sign::Plus.negate(), Sign::Minus);
        assert_eq!(Sign::Zero.negate(), Sign::Zero);
        assert_eq!(Sign::Minus.combine(Sign::Minus), Sign::Plus);
        assert_eq!(Sign::Minus.combine(Sign::Plus), Sign::Minus);
        assert_eq!(Sign::Zero.combine(Sign::Plus), Sign::Zero);
    }

    #[test]
    fn one_is_one() {
        assert!(BigInt::one().is_one());
        assert!(!BigInt::zero().is_one());
        assert!(!BigInt::from(-1).is_one());
    }
}
