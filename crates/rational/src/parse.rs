//! Radix-10 parsing and formatting for [`BigInt`].

use crate::bigint::{BigInt, Sign};
use core::fmt;
use core::str::FromStr;

/// Error returned when a string cannot be parsed as a [`BigInt`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseBigIntError {
    kind: ParseErrorKind,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum ParseErrorKind {
    Empty,
    InvalidDigit(char),
}

impl fmt::Display for ParseBigIntError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.kind {
            ParseErrorKind::Empty => write!(f, "cannot parse integer from empty string"),
            ParseErrorKind::InvalidDigit(c) => {
                write!(f, "invalid digit {c:?} in integer literal")
            }
        }
    }
}

impl std::error::Error for ParseBigIntError {}

impl ParseBigIntError {
    pub(crate) fn empty() -> Self {
        ParseBigIntError {
            kind: ParseErrorKind::Empty,
        }
    }

    pub(crate) fn invalid(c: char) -> Self {
        ParseBigIntError {
            kind: ParseErrorKind::InvalidDigit(c),
        }
    }
}

/// 10^9 — the largest power of ten fitting a `u32` limb; parsing and
/// printing work in blocks of nine decimal digits.
const DEC_BLOCK: u32 = 1_000_000_000;
const DEC_BLOCK_DIGITS: usize = 9;

impl FromStr for BigInt {
    type Err = ParseBigIntError;

    /// Parses an optionally signed decimal integer. Underscores are
    /// permitted between digits as visual separators, as in Rust literals.
    fn from_str(s: &str) -> Result<BigInt, ParseBigIntError> {
        let (sign, digits) = match s.as_bytes().first() {
            None => return Err(ParseBigIntError::empty()),
            Some(b'-') => (Sign::Minus, &s[1..]),
            Some(b'+') => (Sign::Plus, &s[1..]),
            Some(_) => (Sign::Plus, s),
        };
        if digits.is_empty() {
            return Err(ParseBigIntError::empty());
        }
        let mut mag: Vec<u32> = Vec::new();
        let mut block: u32 = 0;
        let mut block_len = 0usize;
        let mut any_digit = false;
        // Accumulate left-to-right: value = value * 10^k + block.
        let push_block = |mag: &mut Vec<u32>, block: u32, len: usize| {
            let mult = 10u64.pow(len as u32);
            let mut carry = u64::from(block);
            for limb in mag.iter_mut() {
                let t = u64::from(*limb) * mult + carry;
                *limb = t as u32;
                carry = t >> 32;
            }
            while carry != 0 {
                mag.push(carry as u32);
                carry >>= 32;
            }
        };
        for ch in digits.chars() {
            if ch == '_' {
                continue;
            }
            let d = ch
                .to_digit(10)
                .ok_or_else(|| ParseBigIntError::invalid(ch))?;
            any_digit = true;
            block = block * 10 + d;
            block_len += 1;
            if block_len == DEC_BLOCK_DIGITS {
                push_block(&mut mag, block, block_len);
                block = 0;
                block_len = 0;
            }
        }
        if !any_digit {
            return Err(ParseBigIntError::empty());
        }
        if block_len > 0 {
            push_block(&mut mag, block, block_len);
        }
        while mag.last() == Some(&0) {
            mag.pop();
        }
        let sign = if mag.is_empty() { Sign::Zero } else { sign };
        Ok(BigInt::from_sign_mag(sign, mag))
    }
}

impl fmt::Display for BigInt {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_zero() {
            return f.pad_integral(true, "", "0");
        }
        // Repeatedly divide by 10^9, collecting 9-digit blocks.
        let mut mag = self.mag.clone();
        let mut blocks: Vec<u32> = Vec::new();
        while !mag.is_empty() {
            let mut rem = 0u64;
            for limb in mag.iter_mut().rev() {
                let cur = (rem << 32) | u64::from(*limb);
                *limb = (cur / u64::from(DEC_BLOCK)) as u32;
                rem = cur % u64::from(DEC_BLOCK);
            }
            while mag.last() == Some(&0) {
                mag.pop();
            }
            blocks.push(rem as u32);
        }
        let mut s = String::with_capacity(blocks.len() * DEC_BLOCK_DIGITS);
        s.push_str(&blocks.last().unwrap().to_string());
        for b in blocks.iter().rev().skip(1) {
            s.push_str(&format!("{b:09}"));
        }
        f.pad_integral(self.sign != Sign::Minus, "", &s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_round_trips_small() {
        for v in [-1000i64, -1, 0, 1, 7, 42, 999_999_999, 1_000_000_000] {
            let s = v.to_string();
            let parsed: BigInt = s.parse().unwrap();
            assert_eq!(parsed, BigInt::from(v));
            assert_eq!(parsed.to_string(), s);
        }
    }

    #[test]
    fn parse_round_trips_large() {
        let s = "123456789012345678901234567890123456789012345678901234567890";
        let x: BigInt = s.parse().unwrap();
        assert_eq!(x.to_string(), s);
        let neg: BigInt = format!("-{s}").parse().unwrap();
        assert_eq!(neg.to_string(), format!("-{s}"));
        assert_eq!(-neg, x);
    }

    #[test]
    fn parse_accepts_separators_and_plus() {
        let x: BigInt = "+1_000_000".parse().unwrap();
        assert_eq!(x, BigInt::from(1_000_000u32));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("".parse::<BigInt>().is_err());
        assert!("-".parse::<BigInt>().is_err());
        assert!("_".parse::<BigInt>().is_err());
        assert!("12a".parse::<BigInt>().is_err());
        assert!("1.5".parse::<BigInt>().is_err());
        let err = "12a".parse::<BigInt>().unwrap_err();
        assert!(err.to_string().contains("invalid digit"));
    }

    #[test]
    fn parse_leading_zeros() {
        let x: BigInt = "000123".parse().unwrap();
        assert_eq!(x, BigInt::from(123u32));
        let z: BigInt = "-000".parse().unwrap();
        assert!(z.is_zero());
        assert_eq!(z.to_string(), "0");
    }

    #[test]
    fn display_pads() {
        assert_eq!(format!("{:>8}", BigInt::from(42)), "      42");
        assert_eq!(format!("{:>8}", BigInt::from(-42)), "     -42");
    }

    #[test]
    fn display_block_boundaries() {
        for p in 0..12u32 {
            let v = 10u64.pow(p);
            assert_eq!(BigInt::from(v).to_string(), v.to_string());
            assert_eq!(BigInt::from(v - 1).to_string(), (v - 1).to_string());
        }
    }
}
