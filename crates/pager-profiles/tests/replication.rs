//! WAL-shipping replication properties: a follower driven by the
//! leader's `export_snapshot` / `export_wal` stream converges to
//! byte-identical store state, across restarts, checkpoint-boundary
//! generation hand-offs, and a seeded matrix of follower crash
//! schedules (the PR 5 fault matrix extended with a shipping
//! schedule).
//!
//! Byte-identity is the strongest convergence claim available: the
//! snapshot image includes every profile *and* the version counters,
//! so equality proves the follower applied exactly the leader's
//! record sequence — no drops, no duplicates, no reordering.

use std::path::{Path, PathBuf};
use std::sync::Arc;

use pager_profiles::io::{MemIo, StorageIo};
use pager_profiles::{
    ApplyOutcome, DurabilityConfig, DurableStore, FsyncPolicy, ReplicaApplier, Sighting,
    StoreConfig, WalExport,
};

const SOURCE: &str = "node-a";

fn leader_dir() -> PathBuf {
    PathBuf::from("/leader")
}

fn follower_dir() -> PathBuf {
    PathBuf::from("/follower")
}

fn config(checkpoint_every: u64) -> DurabilityConfig {
    DurabilityConfig {
        fsync: FsyncPolicy::Always,
        checkpoint_every,
    }
}

fn open(io: &Arc<MemIo>, dir: &Path, checkpoint_every: u64) -> DurableStore {
    let io: Arc<dyn StorageIo> = Arc::<MemIo>::clone(io);
    DurableStore::open(io, dir, StoreConfig::default(), config(checkpoint_every))
        .expect("open store")
        .0
}

fn open_follower(io: &Arc<MemIo>, checkpoint_every: u64) -> ReplicaApplier {
    let durable = Arc::new(open(io, &follower_dir(), checkpoint_every));
    let storage: Arc<dyn StorageIo> = Arc::<MemIo>::clone(io);
    ReplicaApplier::new(durable, storage, &follower_dir())
}

fn observe(leader: &DurableStore, device: &str, time: f64, cell: usize) {
    leader
        .observe_batch(
            8,
            &[Sighting {
                device: device.to_string(),
                time,
                cell,
            }],
        )
        .expect("leader ingest");
}

#[derive(Debug, PartialEq, Eq)]
enum ShipStep {
    CaughtUp,
    Applied(u64),
    Bootstrapped,
}

/// One round of the shipping pump, in-process: read the follower's
/// cursor, fetch from the leader at that position, apply (or
/// bootstrap from a snapshot when the cursor is invalid or the
/// generation is gone).
fn ship_once(leader: &DurableStore, follower: &ReplicaApplier, max_bytes: usize) -> ShipStep {
    let status = follower.cursor(SOURCE);
    if !status.valid {
        let snap = leader.export_snapshot();
        follower
            .install_snapshot(SOURCE, snap.generation, snap.offset, &snap.bytes)
            .expect("install snapshot");
        return ShipStep::Bootstrapped;
    }
    match leader
        .export_wal(status.generation, status.offset, max_bytes)
        .expect("export wal")
    {
        WalExport::Bootstrap { .. } => {
            let snap = leader.export_snapshot();
            follower
                .install_snapshot(SOURCE, snap.generation, snap.offset, &snap.bytes)
                .expect("install snapshot");
            ShipStep::Bootstrapped
        }
        WalExport::Frames { bytes, .. } if bytes.is_empty() => ShipStep::CaughtUp,
        WalExport::Frames { bytes, end } => {
            match follower
                .apply_chunk(SOURCE, status.generation, status.offset, end, &bytes)
                .expect("apply chunk")
            {
                ApplyOutcome::Applied { records, .. } => ShipStep::Applied(records),
                // A racing cursor move; the next round re-reads it.
                ApplyOutcome::Conflict { .. } => ShipStep::Applied(0),
            }
        }
    }
}

/// Pumps until caught up; returns how many bootstrap installs ran.
fn ship_to_convergence(leader: &DurableStore, follower: &ReplicaApplier, max_bytes: usize) -> u64 {
    let mut bootstraps = 0;
    for _ in 0..10_000 {
        match ship_once(leader, follower, max_bytes) {
            ShipStep::CaughtUp => return bootstraps,
            ShipStep::Bootstrapped => bootstraps += 1,
            ShipStep::Applied(_) => {}
        }
    }
    panic!("shipping never converged");
}

fn assert_identical(leader: &DurableStore, follower: &ReplicaApplier) {
    let leader_image = leader.store().snapshot_bytes();
    let follower_image = follower.durable().store().snapshot_bytes();
    assert_eq!(
        String::from_utf8_lossy(&leader_image),
        String::from_utf8_lossy(&follower_image),
        "follower diverged from leader"
    );
}

#[test]
fn follower_converges_byte_identically_within_a_generation() {
    let leader_io = Arc::new(MemIo::new());
    let follower_io = Arc::new(MemIo::new());
    let leader = open(&leader_io, &leader_dir(), 0);
    let follower = open_follower(&follower_io, 0);

    for i in 0..10 {
        observe(&leader, &format!("d{i}"), f64::from(i), i as usize % 8);
    }
    let bootstraps = ship_to_convergence(&leader, &follower, 64 * 1024);
    assert_eq!(bootstraps, 1, "first contact bootstraps exactly once");
    assert_identical(&leader, &follower);

    // Incremental frames only from here on.
    for i in 10..17 {
        observe(&leader, &format!("d{i}"), f64::from(i), i as usize % 8);
    }
    let bootstraps = ship_to_convergence(&leader, &follower, 64 * 1024);
    assert_eq!(bootstraps, 0, "caught-up follower must not re-bootstrap");
    assert_identical(&leader, &follower);
}

#[test]
fn follower_restarted_behind_k_records_catches_up_via_wal_alone() {
    let leader_io = Arc::new(MemIo::new());
    let follower_io = Arc::new(MemIo::new());
    let leader = open(&leader_io, &leader_dir(), 0);
    {
        let follower = open_follower(&follower_io, 0);
        for i in 0..6 {
            observe(&leader, &format!("d{i}"), f64::from(i), 0);
        }
        ship_to_convergence(&leader, &follower, 64 * 1024);
        // Clean stop: the cursor file matches the durable state.
    }

    // The leader moves on by K records while the follower is down.
    for i in 6..18 {
        observe(&leader, &format!("d{i}"), f64::from(i), 1);
    }

    let follower = open_follower(&follower_io, 0);
    let bootstraps = ship_to_convergence(&leader, &follower, 512);
    assert_eq!(
        bootstraps, 0,
        "same-generation catch-up must replay the WAL, not re-bootstrap"
    );
    assert_identical(&leader, &follower);
}

#[test]
fn checkpoint_boundary_forces_a_bootstrap_and_still_converges() {
    let leader_io = Arc::new(MemIo::new());
    let follower_io = Arc::new(MemIo::new());
    let leader = open(&leader_io, &leader_dir(), 0);
    {
        let follower = open_follower(&follower_io, 0);
        for i in 0..5 {
            observe(&leader, &format!("d{i}"), f64::from(i), 0);
        }
        ship_to_convergence(&leader, &follower, 64 * 1024);
    }

    // While the follower is down the leader both appends and
    // checkpoints: its old WAL generation (the one the follower's
    // cursor points into) is deleted.
    for i in 5..12 {
        observe(&leader, &format!("d{i}"), f64::from(i), 2);
    }
    leader.checkpoint().expect("leader checkpoint");
    for i in 12..15 {
        observe(&leader, &format!("d{i}"), f64::from(i), 3);
    }

    let follower = open_follower(&follower_io, 0);
    let bootstraps = ship_to_convergence(&leader, &follower, 64 * 1024);
    assert!(
        bootstraps >= 1,
        "a deleted generation can only be crossed by snapshot bootstrap"
    );
    assert_identical(&leader, &follower);

    // And the follower's *durable* state matches too: crash it and
    // recover — same image.
    drop(follower);
    follower_io.crash(7);
    let follower = open_follower(&follower_io, 0);
    ship_to_convergence(&leader, &follower, 64 * 1024);
    assert_identical(&leader, &follower);
}

#[test]
fn a_foreign_write_between_cursor_and_store_forces_a_bootstrap() {
    let leader_io = Arc::new(MemIo::new());
    let follower_io = Arc::new(MemIo::new());
    let leader = open(&leader_io, &leader_dir(), 0);
    {
        let follower = open_follower(&follower_io, 0);
        for i in 0..4 {
            observe(&leader, &format!("d{i}"), f64::from(i), 0);
        }
        ship_to_convergence(&leader, &follower, 64 * 1024);
        // A write the cursor never saw (own-shard traffic in a mixed
        // store, or a crash torn between apply and cursor write):
        // after restart the cursor's recorded store version no longer
        // matches, so it must read as invalid.
        observe(follower.durable(), "own-device", 100.0, 5);
    }

    let follower = open_follower(&follower_io, 0);
    assert!(
        !follower.cursor(SOURCE).valid,
        "ambiguous cursor accepted — duplicates could be applied"
    );
    let bootstraps = ship_to_convergence(&leader, &follower, 64 * 1024);
    assert!(bootstraps >= 1);
    // Not byte-identical here (the follower legitimately holds its
    // own extra device), but every leader device must be present
    // with a live version.
    for i in 0..4 {
        assert!(
            follower
                .durable()
                .store()
                .version(&format!("d{i}"))
                .is_some(),
            "leader device d{i} missing after bootstrap"
        );
    }
    assert!(follower.durable().store().version("own-device").is_some());
}

/// One seeded shipping schedule: the leader ingests in bursts with a
/// mid-run checkpoint; the pump ships with a seed-derived chunk size;
/// the follower is crashed at a seed-derived point and recovered; the
/// pump then runs to convergence. Whatever the schedule, the end
/// state is byte-identical.
fn run_shipping_schedule(seed: u64) {
    let chunk = [48usize, 160, 1 << 12, 1 << 20][(seed % 4) as usize];
    let crash_after_ships = 1 + (seed / 4) % 8;
    let checkpoint_at_burst = (seed / 32) % 2 == 1;

    let leader_io = Arc::new(MemIo::new());
    let follower_io = Arc::new(MemIo::new());
    let leader = open(&leader_io, &leader_dir(), 0);
    let mut follower = open_follower(&follower_io, 0);

    let mut device = 0u32;
    let mut ships = 0u64;
    let mut crashed = false;
    for burst in 0..6u32 {
        for _ in 0..4 {
            observe(&leader, &format!("d{device}"), f64::from(device), 0);
            device += 1;
        }
        if checkpoint_at_burst && burst == 2 {
            leader.checkpoint().expect("leader checkpoint");
        }
        // Ship a bounded number of rounds (not to convergence): the
        // follower is mid-catch-up when the crash lands.
        for _ in 0..2 {
            let _ = ship_once(&leader, &follower, chunk);
            ships += 1;
            if !crashed && ships >= crash_after_ships {
                crashed = true;
                drop(follower);
                follower_io.crash(seed);
                follower = open_follower(&follower_io, 0);
            }
        }
    }
    ship_to_convergence(&leader, &follower, chunk);
    let leader_image = leader.store().snapshot_bytes();
    let follower_image = follower.durable().store().snapshot_bytes();
    assert_eq!(
        String::from_utf8_lossy(&leader_image),
        String::from_utf8_lossy(&follower_image),
        "seed {seed}: follower diverged (chunk {chunk}, crash after {crash_after_ships} ships, \
         checkpoint {checkpoint_at_burst})"
    );
}

/// The acceptance matrix: 64 seeded shipping schedules (chunk size,
/// crash point, and checkpoint placement all derived from the seed),
/// each crashing the follower mid-catch-up and recovering.
#[test]
fn shipping_survives_a_seeded_crash_schedule_matrix() {
    for seed in 0..64 {
        run_shipping_schedule(seed);
    }
}
