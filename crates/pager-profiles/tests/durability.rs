//! Durability properties: the WAL's prefix guarantee under arbitrary
//! truncation and corruption, and crash recovery across a seeded
//! matrix of injected fault schedules.
//!
//! The load-bearing invariant is the *prefix property*: whatever a
//! crash, torn write, or flipped bit does to the log's tail, `scan`
//! returns an intact prefix of the records that were appended — never
//! a reordering, never a decoded-from-garbage record, never a panic.
//! Recovery correctness (the acked-write guarantee) reduces to it.

use std::path::PathBuf;
use std::sync::Arc;

use pager_profiles::io::{FaultKind, FaultyIo, MemIo, StorageIo};
use pager_profiles::wal::{encode_record, scan, SightingRecord};
use pager_profiles::{DurabilityConfig, DurableError, DurableStore, FsyncPolicy, StoreConfig};
use proptest::prelude::*;

/// A small pool of device names covering the encoding edge cases
/// (empty, unicode, long).
const DEVICES: [&str; 6] = [
    "alice",
    "b\u{f6}b",
    "\u{4e16}\u{754c}-pager",
    "d",
    "",
    "a-device-name-long-enough-to-dominate-its-frame",
];

fn records_from(raw: &[(usize, usize, usize)]) -> Vec<SightingRecord> {
    raw.iter()
        .enumerate()
        .map(|(i, &(name, cells, cell))| SightingRecord {
            device: DEVICES[name % DEVICES.len()].to_string(),
            cells: cells % 64 + 1,
            time: i as f64 * 1.5,
            cell: cell % 64,
        })
        .collect()
}

fn encode_all(records: &[SightingRecord]) -> Vec<u8> {
    records
        .iter()
        .flat_map(|r| encode_record(r).expect("test records encode"))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Encoding then scanning an intact log returns every record
    /// verbatim, with no bytes unaccounted for.
    #[test]
    fn scan_round_trips_intact_logs(
        raw in proptest::collection::vec((0usize..6, 0usize..64, 0usize..64), 0..20),
    ) {
        let records = records_from(&raw);
        let bytes = encode_all(&records);
        let scanned = scan(&bytes);
        prop_assert_eq!(&scanned.records, &records);
        prop_assert_eq!(scanned.valid_len, bytes.len() as u64);
        prop_assert_eq!(scanned.truncated_bytes, 0);
    }

    /// Cutting the log at *any* byte yields an intact record prefix:
    /// `valid_len` covers exactly the surviving records and
    /// `truncated_bytes` the torn tail.
    #[test]
    fn truncation_at_any_byte_yields_a_record_prefix(
        raw in proptest::collection::vec((0usize..6, 0usize..64, 0usize..64), 1..16),
        cut_point in 0usize..100_000,
    ) {
        let records = records_from(&raw);
        let bytes = encode_all(&records);
        let cut = cut_point % (bytes.len() + 1);
        let scanned = scan(&bytes[..cut]);
        prop_assert!(scanned.records.len() <= records.len());
        prop_assert_eq!(&scanned.records[..], &records[..scanned.records.len()]);
        prop_assert!(scanned.valid_len <= cut as u64);
        prop_assert_eq!(scanned.truncated_bytes, cut as u64 - scanned.valid_len);
        // valid_len is exactly the bytes of the records it vouches for.
        let reencoded = encode_all(&scanned.records);
        prop_assert_eq!(scanned.valid_len, reencoded.len() as u64);
    }

    /// Flipping any single bit never panics and never fabricates or
    /// reorders records: the scan still returns a prefix of the
    /// original sequence (the checksum eats the corrupt frame and
    /// everything after it).
    #[test]
    fn single_bit_flip_keeps_an_intact_prefix(
        raw in proptest::collection::vec((0usize..6, 0usize..64, 0usize..64), 1..16),
        flip in 0usize..1_000_000,
    ) {
        let records = records_from(&raw);
        let mut bytes = encode_all(&records);
        let bit = flip % (bytes.len() * 8);
        bytes[bit / 8] ^= 1 << (bit % 8);
        let scanned = scan(&bytes);
        prop_assert!(scanned.records.len() < records.len(),
            "a flipped bit must invalidate at least its own frame");
        prop_assert_eq!(&scanned.records[..], &records[..scanned.records.len()]);
        prop_assert!(scanned.valid_len + scanned.truncated_bytes == bytes.len() as u64);
    }
}

/// Drives one ingest run against a seeded fault schedule, crashes the
/// disk, and recovers on healthy I/O. Returns nothing — panics carry
/// the seed so any failing schedule reproduces exactly.
fn run_schedule(seed: u64) {
    let dir = PathBuf::from("/fault-data");
    let mem = Arc::new(MemIo::new());
    let faulty = Arc::new(FaultyIo::from_seed(Arc::clone(&mem), seed, 40));
    let kind = faulty.kind();
    let config = DurabilityConfig {
        fsync: FsyncPolicy::Always,
        checkpoint_every: 0,
    };

    // Ingest with the fault armed. Every batch targets its own device,
    // so "batch i was acked" maps to "device d{i} must survive".
    let mut acked: Vec<String> = Vec::new();
    let opened = DurableStore::open(
        Arc::<FaultyIo>::clone(&faulty),
        &dir,
        StoreConfig::default(),
        config,
    );
    if let Ok((durable, _)) = opened {
        for i in 0..12u32 {
            let device = format!("d{i}");
            let batch = [pager_profiles::Sighting {
                device: device.clone(),
                time: f64::from(i),
                cell: i as usize % 8,
            }];
            match durable.observe_batch(8, &batch) {
                Ok(_) => acked.push(device),
                Err(DurableError::Degraded(_)) => break,
                Err(DurableError::Rejected(e)) => panic!("seed {seed}: valid batch rejected: {e}"),
            }
            if i == 6 {
                // Rotation mid-run: a fault here degrades the store
                // but must never endanger already-acked records.
                let _ = durable.checkpoint();
            }
        }
    }

    // Power cut, then reboot on a healthy disk.
    mem.crash(seed);
    let healthy: Arc<dyn StorageIo> = mem;
    let (recovered, report) = DurableStore::open(healthy, &dir, StoreConfig::default(), config)
        .unwrap_or_else(|e| panic!("seed {seed}: recovery failed on healthy disk: {e}"));

    // FlipBit is the one schedule allowed to lose acked records: the
    // corruption is silent at append time, so the ack goes out before
    // the checksum can catch it. Everything else honors the guarantee.
    if kind != FaultKind::FlipBit {
        for device in &acked {
            assert!(
                recovered.store().version(device).is_some(),
                "seed {seed} ({kind:?}, fault at op {}): acked device {device} lost \
                 (recovered {} records, truncated {} bytes)",
                faulty.fault_at(),
                report.recovered_records,
                report.truncated_bytes,
            );
        }
    }

    // Whatever survived, the store must be consistent: it accepts new
    // sightings and versions keep climbing.
    let fresh = recovered
        .observe_batch(
            8,
            &[pager_profiles::Sighting {
                device: "post-recovery".to_string(),
                time: 1e6,
                cell: 0,
            }],
        )
        .unwrap_or_else(|e| panic!("seed {seed}: recovered store refused ingest: {e}"));
    let floor = acked.len() as u64;
    assert!(
        fresh[0].1 > 0 && fresh[0].1 >= report.recovered_records.min(floor),
        "seed {seed}: version counter regressed after recovery"
    );
}

/// The acceptance matrix: 64 seeded schedules (operation index and
/// fault kind both derived from the seed) each ingesting, faulting,
/// crashing, and recovering.
#[test]
fn recovery_survives_a_seeded_fault_schedule_matrix() {
    for seed in 0..64 {
        run_schedule(seed);
    }
}

/// Drives one schedule where the fault is armed during *recovery*
/// itself: a healthy ingest run, a crash, then an open (and follow-up
/// ingest) on faulty I/O, another crash, and a final healthy open.
///
/// The property under test: a fault while recovering must never cost
/// records acked *before* the fault existed. The open either fails
/// loudly (a transient read error must not silently fall back to stale
/// state) or recovers correctly; either way the healthy reopen sees
/// every pre-fault acked record.
fn run_recovery_schedule(seed: u64) {
    let dir = PathBuf::from("/fault-recovery");
    let mem = Arc::new(MemIo::new());
    let config = DurabilityConfig {
        fsync: FsyncPolicy::Always,
        checkpoint_every: 0,
    };

    // Phase 1: healthy ingest, everything acked and durable. A
    // mid-run checkpoint leaves both a snapshot and a live WAL for
    // recovery to chew on.
    {
        let healthy: Arc<dyn StorageIo> = Arc::<MemIo>::clone(&mem);
        let (durable, _) = DurableStore::open(healthy, &dir, StoreConfig::default(), config)
            .unwrap_or_else(|e| panic!("seed {seed}: clean open failed: {e}"));
        for i in 0..8u32 {
            durable
                .observe_batch(
                    8,
                    &[pager_profiles::Sighting {
                        device: format!("d{i}"),
                        time: f64::from(i),
                        cell: i as usize % 8,
                    }],
                )
                .unwrap_or_else(|e| panic!("seed {seed}: healthy ingest failed: {e}"));
            if i == 3 {
                durable
                    .checkpoint()
                    .unwrap_or_else(|e| panic!("seed {seed}: healthy checkpoint failed: {e}"));
            }
        }
    }
    mem.crash(seed);

    // Phase 2: recovery and follow-up ingest on a faulty disk.
    let faulty = Arc::new(FaultyIo::from_seed(Arc::clone(&mem), seed, 20));
    let kind = faulty.kind();
    let mut late_acked: Vec<String> = Vec::new();
    match DurableStore::open(
        Arc::<FaultyIo>::clone(&faulty),
        &dir,
        StoreConfig::default(),
        config,
    ) {
        // Refusing to open on an injected I/O error is correct: no
        // store, no new acks, nothing to lose.
        Err(_) => {}
        Ok((durable, _)) => {
            for i in 8..12u32 {
                let device = format!("d{i}");
                match durable.observe_batch(
                    8,
                    &[pager_profiles::Sighting {
                        device: device.clone(),
                        time: f64::from(i),
                        cell: i as usize % 8,
                    }],
                ) {
                    Ok(_) => late_acked.push(device),
                    Err(DurableError::Degraded(_)) => break,
                    Err(DurableError::Rejected(e)) => {
                        panic!("seed {seed}: valid batch rejected: {e}")
                    }
                }
            }
        }
    }
    mem.crash(seed ^ 0xBEEF);

    // Phase 3: healthy reopen. Pre-fault acks must always be there —
    // no recovery-time fault is allowed to touch them.
    let healthy: Arc<dyn StorageIo> = mem;
    let (recovered, report) = DurableStore::open(healthy, &dir, StoreConfig::default(), config)
        .unwrap_or_else(|e| panic!("seed {seed}: final recovery failed on healthy disk: {e}"));
    for i in 0..8u32 {
        let device = format!("d{i}");
        assert!(
            recovered.store().version(&device).is_some(),
            "seed {seed} ({kind:?}, fault at op {}): pre-fault acked device {device} lost \
             (recovered {} records, truncated {} bytes)",
            faulty.fault_at(),
            report.recovered_records,
            report.truncated_bytes,
        );
    }
    // Acks issued through the faulty disk honor the same guarantee,
    // except under FlipBit (silent corruption outruns the ack).
    if kind != FaultKind::FlipBit {
        for device in &late_acked {
            assert!(
                recovered.store().version(device).is_some(),
                "seed {seed} ({kind:?}): post-recovery acked device {device} lost"
            );
        }
    }
}

/// Recovery-time counterpart of the ingest-time matrix: 64 seeded
/// schedules where the fault fires while a previous generation is
/// being recovered.
#[test]
fn recovery_time_faults_never_lose_previously_acked_records() {
    for seed in 0..64 {
        run_recovery_schedule(seed);
    }
}
