//! Property-based tests for the profile subsystem.
//!
//! The paper's model (§1.2) requires every device row to be a strictly
//! positive probability vector; the whole point of this crate is that
//! *any* ingest history yields planner-legal rows. These properties
//! pin that down, plus the two structural facts the estimators rely
//! on: the Markov predictor degenerates to the empirical distribution
//! under i.i.d. movement, and staleness decay moves distributions
//! monotonically toward uniform.

use pager_profiles::estimators::{total_variation, uniform};
use pager_profiles::{DeviceProfile, Estimator, ProfileConfig, ProfileStore, StoreConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const ESTIMATORS: [Estimator; 3] = [Estimator::Empirical, Estimator::Recency, Estimator::Markov];

/// Ingests a history of cells at unit intervals; returns the profile.
fn profile_from(history: &[usize], cells: usize, config: &ProfileConfig) -> DeviceProfile {
    let mut profile = DeviceProfile::new(cells);
    for (i, &cell) in history.iter().enumerate() {
        profile
            .observe(i as f64, cell, (i + 1) as u64, config)
            .expect("valid sighting");
    }
    profile
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every produced row is strictly positive and sums to 1 within
    /// 1e-12 — for every estimator, any history (including empty),
    /// and any query time.
    #[test]
    fn rows_are_always_planner_legal(
        cells in 1usize..8,
        raw_history in proptest::collection::vec(0usize..64, 0..60),
        elapsed in 0.0f64..5000.0,
        alpha in 0.01f64..4.0,
        decay in 0.05f64..1.0,
        half_life in 1.0f64..2000.0,
    ) {
        let config = ProfileConfig {
            alpha,
            decay,
            staleness_half_life: half_life,
            markov_horizon: 32,
        };
        let history: Vec<usize> = raw_history.iter().map(|&x| x % cells).collect();
        let profile = profile_from(&history, cells, &config);
        let now = history.len() as f64 + elapsed;
        for est in ESTIMATORS {
            let row = profile.distribution(est, now, &config);
            prop_assert_eq!(row.len(), cells);
            let sum: f64 = row.iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-12, "{:?} sums to {}", est, sum);
            prop_assert!(row.iter().all(|&p| p > 0.0), "{:?} row {:?}", est, row);
        }
    }

    /// Under i.i.d. movement the cell→cell transition rows all equal
    /// the marginal, so the Markov prediction converges to the
    /// empirical distribution as the history grows.
    #[test]
    fn markov_converges_to_empirical_under_iid(
        seed in any::<u64>(),
        cells in 2usize..6,
        steps in 1usize..20,
    ) {
        let config = ProfileConfig {
            alpha: 0.05,
            ..ProfileConfig::default()
        };
        let mut rng = StdRng::seed_from_u64(seed);
        // A random (strictly positive) sampling distribution.
        let weights: Vec<f64> = (0..cells).map(|_| rng.gen_range(0.2..1.0)).collect();
        let total: f64 = weights.iter().sum();
        let n = 600usize;
        let history: Vec<usize> = (0..n)
            .map(|_| {
                let mut u: f64 = rng.gen::<f64>() * total;
                for (j, &w) in weights.iter().enumerate() {
                    if u < w {
                        return j;
                    }
                    u -= w;
                }
                cells - 1
            })
            .collect();
        let profile = profile_from(&history, cells, &config);
        let now = history.len() as f64 - 1.0 + steps as f64;
        let markov = profile.distribution(Estimator::Markov, now, &config);
        let empirical = profile.distribution(Estimator::Empirical, history.len() as f64, &config);
        let tv = total_variation(&markov, &empirical);
        prop_assert!(tv < 0.12, "TV {} after {} steps: {:?} vs {:?}", tv, steps, markov, empirical);
    }

    /// Staleness decay is monotone: the longer a device goes
    /// unsighted, the closer its distribution is to uniform.
    #[test]
    fn staleness_decay_is_monotone_toward_uniform(
        cells in 2usize..8,
        raw_history in proptest::collection::vec(0usize..64, 1..40),
        gaps in proptest::collection::vec(0.1f64..300.0, 2..12),
        half_life in 1.0f64..500.0,
    ) {
        let config = ProfileConfig {
            staleness_half_life: half_life,
            ..ProfileConfig::default()
        };
        let history: Vec<usize> = raw_history.iter().map(|&x| x % cells).collect();
        let profile = profile_from(&history, cells, &config);
        let last = history.len() as f64 - 1.0;
        let u = uniform(cells);
        // Strictly increasing query times via a running sum of gaps.
        for est in [Estimator::Empirical, Estimator::Recency] {
            let mut elapsed = 0.0;
            let mut prev = total_variation(&profile.distribution(est, last, &config), &u);
            for &gap in &gaps {
                elapsed += gap;
                let d = total_variation(&profile.distribution(est, last + elapsed, &config), &u);
                prop_assert!(d <= prev + 1e-12, "{:?}: {} then {}", est, prev, d);
                prev = d;
            }
        }
    }

    /// The store's planner-ready instances inherit row legality, and
    /// versions strictly increase across interleaved ingest.
    #[test]
    fn store_instances_are_planner_legal(
        seed in any::<u64>(),
        cells in 2usize..6,
        devices in 1usize..5,
        sightings in 10usize..80,
    ) {
        let store = ProfileStore::new(StoreConfig::default()).expect("valid config");
        let mut rng = StdRng::seed_from_u64(seed);
        let names: Vec<String> = (0..devices).map(|d| format!("dev{d}")).collect();
        let mut last_version = 0u64;
        for t in 0..sightings {
            let d = rng.gen_range(0..devices);
            let cell = rng.gen_range(0..cells);
            let v = store
                .observe(&names[d], cells, t as f64, cell)
                .expect("valid sighting");
            prop_assert!(v > last_version, "version must strictly increase");
            last_version = v;
        }
        let refs: Vec<&str> = names.iter().map(String::as_str).collect();
        for est in ESTIMATORS {
            let (instance, versions, staleness) = store
                .instance_for(&refs, est, None)
                .expect("all devices known");
            prop_assert_eq!(instance.num_devices(), devices);
            prop_assert_eq!(instance.num_cells(), cells);
            prop_assert_eq!(versions.len(), devices);
            prop_assert!(staleness.iter().all(|&l| (0.0..=1.0).contains(&l)));
            for i in 0..devices {
                let row = instance.device_row(i);
                let sum: f64 = row.iter().sum();
                prop_assert!((sum - 1.0).abs() < 1e-12);
                prop_assert!(row.iter().all(|&p| p > 0.0));
            }
        }
    }
}
