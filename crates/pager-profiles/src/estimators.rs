//! Canonical location-distribution estimators.
//!
//! The paper's model takes per-device probability vectors as input,
//! citing [15, 16] for how systems approximate them from movement
//! histories. The math lives here once; `cellnet::estimator` re-exports
//! these functions so trace-based offline estimation and the online
//! [`crate::ProfileStore`] cannot drift apart.

/// Laplace-smoothed empirical distribution of a history over `c` cells:
/// `p_j = (count_j + α) / (len + c·α)`.
///
/// With `α > 0` every probability is positive, as the paper's model
/// requires.
///
/// # Panics
///
/// Panics if `c == 0`, if `alpha < 0`, if the history is empty and
/// `alpha == 0`, or if a history entry is out of range.
#[must_use]
pub fn empirical(history: &[usize], c: usize, alpha: f64) -> Vec<f64> {
    assert!(c > 0, "need at least one cell");
    assert!(alpha >= 0.0, "smoothing must be non-negative");
    assert!(
        !history.is_empty() || alpha > 0.0,
        "empty history needs positive smoothing"
    );
    let mut counts = vec![0.0f64; c];
    for &cell in history {
        assert!(cell < c, "history cell {cell} out of range");
        counts[cell] += 1.0;
    }
    empirical_from_counts(&counts, alpha)
}

/// The same Laplace rule applied to pre-accumulated (possibly
/// fractional) per-cell counts — the incremental form the online
/// profile store maintains.
///
/// # Panics
///
/// Panics if `counts` is empty, a count is negative or non-finite,
/// `alpha < 0`, or the total mass is zero with `alpha == 0`.
#[must_use]
pub fn empirical_from_counts(counts: &[f64], alpha: f64) -> Vec<f64> {
    assert!(!counts.is_empty(), "need at least one cell");
    assert!(alpha >= 0.0, "smoothing must be non-negative");
    let mut total = 0.0f64;
    for &n in counts {
        assert!(n.is_finite() && n >= 0.0, "counts must be non-negative");
        total += n;
    }
    assert!(
        total > 0.0 || alpha > 0.0,
        "zero total mass needs positive smoothing"
    );
    let denom = total + counts.len() as f64 * alpha;
    counts.iter().map(|&n| (n + alpha) / denom).collect()
}

/// Exponential-recency-weighted distribution: observation `t` steps ago
/// carries weight `decay^t`, plus `alpha` smoothing mass per cell.
///
/// # Panics
///
/// Panics if `c == 0`, `decay` is outside `(0, 1]`, `alpha < 0`, the
/// history is empty with `alpha == 0`, or an entry is out of range.
#[must_use]
pub fn recency_weighted(history: &[usize], c: usize, decay: f64, alpha: f64) -> Vec<f64> {
    assert!(c > 0, "need at least one cell");
    assert!(decay > 0.0 && decay <= 1.0, "decay must be in (0, 1]");
    assert!(alpha >= 0.0, "smoothing must be non-negative");
    assert!(
        !history.is_empty() || alpha > 0.0,
        "empty history needs positive smoothing"
    );
    let mut weights = vec![alpha; c];
    let mut w = 1.0f64;
    for &cell in history.iter().rev() {
        assert!(cell < c, "history cell {cell} out of range");
        weights[cell] += w;
        w *= decay;
    }
    let total: f64 = weights.iter().sum();
    weights.into_iter().map(|x| x / total).collect()
}

/// Total-variation distance between two distributions.
///
/// # Panics
///
/// Panics if the lengths differ.
#[must_use]
pub fn total_variation(a: &[f64], b: &[f64]) -> f64 {
    assert_eq!(a.len(), b.len(), "distributions must share support");
    0.5 * a.iter().zip(b).map(|(x, y)| (x - y).abs()).sum::<f64>()
}

/// The uniform distribution over `c` cells.
///
/// # Panics
///
/// Panics if `c == 0`.
#[must_use]
pub fn uniform(c: usize) -> Vec<f64> {
    assert!(c > 0, "need at least one cell");
    vec![1.0 / c as f64; c]
}

/// Convex blend `λ·p + (1−λ)·uniform` — the staleness decay applied to
/// a profile that has not been sighted recently. `λ = 1` returns `p`
/// unchanged; `λ = 0` forgets everything.
///
/// # Panics
///
/// Panics if `p` is empty or `lambda` is outside `[0, 1]`.
#[must_use]
pub fn blend_toward_uniform(p: &[f64], lambda: f64) -> Vec<f64> {
    assert!(!p.is_empty(), "need at least one cell");
    assert!((0.0..=1.0).contains(&lambda), "lambda must be in [0, 1]");
    let u = 1.0 / p.len() as f64;
    p.iter().map(|&x| lambda * x + (1.0 - lambda) * u).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empirical_counts() {
        let p = empirical(&[0, 0, 1, 2], 4, 0.0);
        assert_eq!(p, vec![0.5, 0.25, 0.25, 0.0]);
        let sum: f64 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn counts_form_matches_history_form() {
        let history = [0usize, 0, 1, 3, 3, 3];
        let mut counts = vec![0.0; 5];
        for &cell in &history {
            counts[cell] += 1.0;
        }
        let a = empirical(&history, 5, 0.5);
        let b = empirical_from_counts(&counts, 0.5);
        assert!(total_variation(&a, &b) < 1e-15);
    }

    #[test]
    fn recency_prefers_recent_cells() {
        let history = vec![0, 0, 0, 0, 1, 1];
        let p = recency_weighted(&history, 3, 0.5, 0.01);
        assert!(p[1] > p[0], "{p:?}");
        let sum: f64 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn blend_endpoints() {
        let p = vec![0.7, 0.2, 0.1];
        assert!(total_variation(&blend_toward_uniform(&p, 1.0), &p) < 1e-15);
        assert!(total_variation(&blend_toward_uniform(&p, 0.0), &uniform(3)) < 1e-15);
        // Halfway blend halves the distance to uniform.
        let half = blend_toward_uniform(&p, 0.5);
        let d_full = total_variation(&p, &uniform(3));
        assert!((total_variation(&half, &uniform(3)) - 0.5 * d_full).abs() < 1e-12);
    }

    #[test]
    fn guards() {
        assert!(std::panic::catch_unwind(|| empirical(&[], 3, 0.0)).is_err());
        assert!(std::panic::catch_unwind(|| empirical(&[5], 3, 1.0)).is_err());
        assert!(std::panic::catch_unwind(|| recency_weighted(&[0], 3, 0.0, 0.1)).is_err());
        assert!(std::panic::catch_unwind(|| empirical_from_counts(&[], 1.0)).is_err());
        assert!(std::panic::catch_unwind(|| empirical_from_counts(&[0.0], 0.0)).is_err());
        assert!(std::panic::catch_unwind(|| blend_toward_uniform(&[1.0], 1.5)).is_err());
    }
}
