//! Crash-safe persistence for [`ProfileStore`]: WAL + atomic
//! generation-numbered snapshots.
//!
//! # Layout
//!
//! A data directory holds at most one live generation `G`:
//!
//! ```text
//! data-dir/
//!   snapshot.G.json   # full store snapshot (one JSON line)
//!   wal.G.log         # sightings ingested since snapshot G
//! ```
//!
//! # The acked-write guarantee
//!
//! [`DurableStore::observe_batch`] applies sightings to the in-memory
//! store, appends their WAL records, and (under
//! [`FsyncPolicy::Always`]) fsyncs — all before returning. The first
//! append of each generation also fsyncs the data directory, so the
//! freshly created WAL file's *entry* is durable, not just its bytes.
//! A success return therefore means the sightings are durable: any
//! later crash recovers them from `snapshot.G + wal.G`.
//!
//! The guarantee is protected at ingest: a sighting that cannot be
//! encoded within the WAL's frame bounds (device name over
//! [`crate::wal::MAX_DEVICE_BYTES`], values that do not fit the wire)
//! is rejected before it is applied or logged — otherwise one
//! oversized record would be acked now and truncate the log (plus
//! every acked record after it) at the next recovery.
//!
//! # Checkpoint ordering
//!
//! [`DurableStore::checkpoint`] writes `snapshot.{G+1}` via temp file
//! → sync → rename → dir sync, and only *then* switches appends to
//! `wal.{G+1}` and removes generation `G`. The order is the safety
//! argument: if any record in `wal.{G+1}` is durable, `snapshot.{G+1}`
//! was durable first, so recovery (which picks the highest-generation
//! valid snapshot) can never pair a new WAL with an old snapshot and
//! drop the acked records in between.
//!
//! # Degraded mode
//!
//! Any WAL or checkpoint I/O failure flips the store into degraded
//! mode: ingest is rejected with [`DurableError::Degraded`] (the
//! durability promise can no longer be kept) while reads — and
//! therefore planning — keep serving from memory. The process stays
//! up; the operator replaces the disk.

use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex, PoisonError};

use crate::io::{write_atomic, StorageIo};
use crate::store::{ProfileStore, Sighting, StoreConfig};
use crate::wal::{encode_record, scan, SightingRecord};

/// When appended WAL records are fsynced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Fsync before every ack — the full acked-write guarantee.
    Always,
    /// Fsync every `n` appended records (group commit); a crash can
    /// lose up to the last `n - 1` acked sightings.
    Interval(u64),
    /// Never fsync during ingest (the OS flushes when it pleases);
    /// fastest, weakest.
    Never,
}

impl FsyncPolicy {
    /// Parses `always`, `never`, or `interval:<n>`.
    ///
    /// # Errors
    ///
    /// A message naming the valid forms.
    pub fn parse(text: &str) -> Result<FsyncPolicy, String> {
        match text {
            "always" => Ok(FsyncPolicy::Always),
            "never" => Ok(FsyncPolicy::Never),
            other => match other.strip_prefix("interval:") {
                Some(n) => match n.parse::<u64>() {
                    Ok(n) if n > 0 => Ok(FsyncPolicy::Interval(n)),
                    _ => Err(format!(
                        "bad fsync interval {n:?} (need a positive integer)"
                    )),
                },
                None => Err(format!(
                    "bad fsync policy {other:?} (expected always, never, or interval:<n>)"
                )),
            },
        }
    }
}

/// Durability knobs.
#[derive(Debug, Clone, Copy)]
pub struct DurabilityConfig {
    /// Fsync policy for WAL appends.
    pub fsync: FsyncPolicy,
    /// Schedule a checkpoint after this many WAL records (0 disables
    /// count-triggered checkpoints).
    pub checkpoint_every: u64,
}

impl Default for DurabilityConfig {
    fn default() -> DurabilityConfig {
        DurabilityConfig {
            fsync: FsyncPolicy::Always,
            checkpoint_every: 10_000,
        }
    }
}

/// What recovery found on open.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Generation recovered into (0 when starting fresh).
    pub generation: u64,
    /// Whether a snapshot file was loaded.
    pub snapshot_loaded: bool,
    /// WAL records replayed into the store.
    pub recovered_records: u64,
    /// Bytes dropped from the WAL tail (torn writes, corruption).
    pub truncated_bytes: u64,
}

/// Why a durable ingest was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DurableError {
    /// The sighting itself is invalid (bad cell, time regression, …);
    /// nothing to do with the disk.
    Rejected(String),
    /// The data disk failed; the store is read-only until restarted
    /// on a healthy disk. Carries the triggering I/O error.
    Degraded(String),
}

impl std::fmt::Display for DurableError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DurableError::Rejected(message) => write!(f, "{message}"),
            DurableError::Degraded(message) => {
                write!(f, "durability lost, store is read-only: {message}")
            }
        }
    }
}

/// Counters mirrored into the serving metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DurabilityStats {
    /// WAL records appended since open.
    pub wal_appends: u64,
    /// Fsyncs issued for the WAL.
    pub wal_fsyncs: u64,
    /// Records replayed at the last open.
    pub wal_recovered_records: u64,
    /// Bytes truncated from the WAL at the last open.
    pub wal_truncated_bytes: u64,
    /// Snapshots rotated since open.
    pub checkpoints: u64,
    /// Whether the store is degraded (read-only).
    pub degraded: bool,
}

/// Serialized WAL state: generation, group-commit progress, and the
/// checkpoint trigger. One lock covers apply + append + fsync so the
/// WAL is always a faithful replay of the in-memory apply order.
struct WalState {
    generation: u64,
    /// Bytes of valid frames in this generation's WAL file — the
    /// position replication cursors point at. Tracked (not re-read)
    /// so exports never race an in-flight append.
    offset: u64,
    unsynced_records: u64,
    records_since_checkpoint: u64,
    /// Whether this generation's WAL file has had its directory entry
    /// made durable (`sync_dir` after the append that created it). A
    /// file fsync alone does not guarantee the *entry* survives a
    /// crash on every filesystem, so the first ack of a generation
    /// must wait for the directory sync too.
    dir_synced: bool,
}

/// Where a store's WAL currently ends — the position a replication
/// cursor chases.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WalPosition {
    /// Live WAL generation.
    pub generation: u64,
    /// Bytes of valid frames in that generation's WAL.
    pub offset: u64,
    /// The store's global version counter at the same instant.
    pub store_version: u64,
}

/// A snapshot image captured atomically with its WAL position: every
/// record at or before `(generation, offset)` is inside `bytes`, and
/// every later record is a WAL frame after `offset`.
#[derive(Debug, Clone)]
pub struct SnapshotExport {
    /// Generation the image belongs to.
    pub generation: u64,
    /// WAL byte offset the image covers up to.
    pub offset: u64,
    /// Store version counter at capture.
    pub store_version: u64,
    /// The [`ProfileStore::snapshot_bytes`] image.
    pub bytes: Vec<u8>,
}

/// Result of asking a leader for WAL frames from a cursor position.
#[derive(Debug, Clone)]
pub enum WalExport {
    /// Frames starting exactly at the requested offset (possibly
    /// empty when the follower is caught up); `end` is the leader
    /// offset immediately after the exported bytes — the position the
    /// follower's cursor advances to once it applies them (equal to
    /// `offset + bytes.len()` here, but a shipping pump that filters
    /// frames passes a larger `end` through to the apply side).
    Frames {
        /// The frame bytes.
        bytes: Vec<u8>,
        /// Leader offset just past the exported frames.
        end: u64,
    },
    /// The requested generation is gone (checkpointed away) or the
    /// offset is past the end — the follower must re-bootstrap from a
    /// [`SnapshotExport`].
    Bootstrap {
        /// The leader's live generation.
        generation: u64,
    },
}

/// A [`ProfileStore`] whose acked sightings survive crashes.
pub struct DurableStore {
    store: Arc<ProfileStore>,
    io: Arc<dyn StorageIo>,
    dir: PathBuf,
    config: DurabilityConfig,
    wal: Mutex<WalState>,
    degraded: AtomicBool,
    checkpoint_pending: AtomicBool,
    wal_appends: AtomicU64,
    wal_fsyncs: AtomicU64,
    wal_recovered_records: AtomicU64,
    wal_truncated_bytes: AtomicU64,
    checkpoints: AtomicU64,
}

fn snapshot_name(generation: u64) -> String {
    format!("snapshot.{generation}.json")
}

fn wal_name(generation: u64) -> String {
    format!("wal.{generation}.log")
}

/// `Some(gen)` when `name` is `<prefix>.<gen>.<suffix>`.
fn parse_generation(name: &str, prefix: &str, suffix: &str) -> Option<u64> {
    name.strip_prefix(prefix)?
        .strip_prefix('.')?
        .strip_suffix(suffix)?
        .strip_suffix('.')?
        .parse()
        .ok()
}

impl DurableStore {
    /// Opens (and recovers) a durable store in `dir`.
    ///
    /// Recovery picks the highest-generation snapshot that loads
    /// cleanly (a torn or corrupt one falls back to the previous
    /// generation — with the checkpoint ordering above, a corrupt
    /// *latest* snapshot can only mean its WAL never received durable
    /// records), replays its WAL, and truncates any torn WAL tail.
    ///
    /// Absence and corruption are the only states recovery works
    /// around: a *transient* read error (anything other than
    /// `NotFound`) fails the open instead. Falling back to an older
    /// generation — or skipping WAL replay — because a read hiccuped
    /// would let the store accept new acked writes on stale state and
    /// silently lose the unread records at the next healthy restart.
    ///
    /// # Errors
    ///
    /// A message when the directory is unusable or a snapshot/WAL
    /// read fails for any reason other than the file not existing.
    pub fn open(
        io: Arc<dyn StorageIo>,
        dir: &Path,
        store_config: StoreConfig,
        config: DurabilityConfig,
    ) -> Result<(DurableStore, RecoveryReport), String> {
        io.create_dir_all(dir)
            .map_err(|e| format!("create {}: {e}", dir.display()))?;
        let names = io
            .list(dir)
            .map_err(|e| format!("list {}: {e}", dir.display()))?;
        let mut snapshot_gens: Vec<u64> = names
            .iter()
            .filter_map(|n| parse_generation(n, "snapshot", "json"))
            .collect();
        snapshot_gens.sort_unstable();

        // Highest-generation snapshot that actually loads; newer
        // corrupt ones are noted and skipped (defense in depth — the
        // write protocol should never produce one).
        let mut store = None;
        let mut generation = 0;
        let mut snapshot_loaded = false;
        for &gen in snapshot_gens.iter().rev() {
            let path = dir.join(snapshot_name(gen));
            match io.read(&path) {
                Ok(bytes) => match ProfileStore::from_snapshot_bytes(&bytes, store_config) {
                    Ok(loaded) => {
                        store = Some(loaded);
                        generation = gen;
                        snapshot_loaded = true;
                        break;
                    }
                    Err(_) => continue,
                },
                // Listed a moment ago but gone now (e.g. a competing
                // cleanup): treat like corruption and fall back.
                Err(e) if e.kind() == io::ErrorKind::NotFound => continue,
                // A transient read error is not evidence the snapshot
                // is bad — refusing to open beats recovering stale
                // state and losing acked records behind its back.
                Err(e) => return Err(format!("read {}: {e}", path.display())),
            }
        }
        let store = match store {
            Some(store) => store,
            None => ProfileStore::new(store_config)?,
        };

        // Replay the matching WAL, truncating at the first bad frame
        // (torn tail) or the first record the store rejects.
        let wal_path = dir.join(wal_name(generation));
        let mut recovered = 0u64;
        let mut truncated = 0u64;
        let wal_bytes = match io.read(&wal_path) {
            Ok(bytes) => Some(bytes),
            // No WAL for this generation: nothing was ingested since
            // its snapshot (or the store is brand new).
            Err(e) if e.kind() == io::ErrorKind::NotFound => None,
            // Skipping replay on a transient error would append new
            // records after unreplayed ones and truncate them away at
            // the next healthy open — fail loudly instead.
            Err(e) => return Err(format!("read {}: {e}", wal_path.display())),
        };
        let mut wal_offset = 0u64;
        if let Some(bytes) = wal_bytes {
            let scanned = scan(&bytes);
            let mut valid_len = 0u64;
            for (record, &frame_end) in scanned.records.iter().zip(&scanned.frame_ends) {
                if store
                    .observe(&record.device, record.cells, record.time, record.cell)
                    .is_err()
                {
                    break;
                }
                recovered += 1;
                valid_len = frame_end;
            }
            truncated = bytes.len() as u64 - valid_len;
            if truncated > 0 {
                io.truncate(&wal_path, valid_len)
                    .and_then(|()| io.sync(&wal_path))
                    .map_err(|e| format!("truncate {}: {e}", wal_path.display()))?;
            }
            wal_offset = valid_len;
        }

        let durable = DurableStore {
            store: Arc::new(store),
            io,
            dir: dir.to_path_buf(),
            config,
            wal: Mutex::new(WalState {
                generation,
                offset: wal_offset,
                unsynced_records: 0,
                records_since_checkpoint: 0,
                // Conservative: re-sync the directory on the first
                // append after any open (one cheap fsync), covering a
                // WAL whose entry never became durable before a crash.
                dir_synced: false,
            }),
            degraded: AtomicBool::new(false),
            checkpoint_pending: AtomicBool::new(false),
            wal_appends: AtomicU64::new(0),
            wal_fsyncs: AtomicU64::new(0),
            wal_recovered_records: AtomicU64::new(recovered),
            wal_truncated_bytes: AtomicU64::new(truncated),
            checkpoints: AtomicU64::new(0),
        };
        let report = RecoveryReport {
            generation,
            snapshot_loaded,
            recovered_records: recovered,
            truncated_bytes: truncated,
        };
        Ok((durable, report))
    }

    /// The wrapped in-memory store (reads and planning go straight
    /// through it).
    #[must_use]
    pub fn store(&self) -> &Arc<ProfileStore> {
        &self.store
    }

    /// Whether the store has lost its disk and gone read-only.
    #[must_use]
    pub fn degraded(&self) -> bool {
        self.degraded.load(Ordering::Acquire)
    }

    /// Current counters.
    #[must_use]
    pub fn stats(&self) -> DurabilityStats {
        DurabilityStats {
            // lint:allow(atomics-ordering-audit): monotone stats counters, no handoff
            wal_appends: self.wal_appends.load(Ordering::Relaxed),
            // lint:allow(atomics-ordering-audit): monotone stats counters, no handoff
            wal_fsyncs: self.wal_fsyncs.load(Ordering::Relaxed),
            // lint:allow(atomics-ordering-audit): set once at open, read-only after
            wal_recovered_records: self.wal_recovered_records.load(Ordering::Relaxed),
            // lint:allow(atomics-ordering-audit): set once at open, read-only after
            wal_truncated_bytes: self.wal_truncated_bytes.load(Ordering::Relaxed),
            // lint:allow(atomics-ordering-audit): monotone stats counter, no handoff
            checkpoints: self.checkpoints.load(Ordering::Relaxed),
            degraded: self.degraded(),
        }
    }

    /// The live WAL generation.
    #[must_use]
    pub fn generation(&self) -> u64 {
        let _cls = pager_core::lockcheck::acquire("wal");
        self.wal
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .generation
    }

    /// The current end of the WAL plus the store version, captured
    /// atomically (no append can land between the three reads).
    #[must_use]
    pub fn wal_position(&self) -> WalPosition {
        let _cls = pager_core::lockcheck::acquire("wal");
        let wal = self.wal.lock().unwrap_or_else(PoisonError::into_inner);
        WalPosition {
            generation: wal.generation,
            offset: wal.offset,
            store_version: self.store.stats().version,
        }
    }

    /// Captures a snapshot image together with the WAL position it
    /// covers, under the WAL lock — the replication bootstrap source.
    /// Works even when degraded (it reads only memory): a read-only
    /// leader can still seed a healthy follower.
    #[must_use]
    pub fn export_snapshot(&self) -> SnapshotExport {
        let _cls = pager_core::lockcheck::acquire("wal");
        let wal = self.wal.lock().unwrap_or_else(PoisonError::into_inner);
        SnapshotExport {
            generation: wal.generation,
            offset: wal.offset,
            store_version: self.store.stats().version,
            bytes: self.store.snapshot_bytes(),
        }
    }

    /// Reads WAL frames from `(generation, offset)` for shipping, up
    /// to `max_bytes` (frames are returned whole, so slightly fewer
    /// bytes may come back; the follower's scanner re-validates every
    /// frame). Held under the WAL lock so a concurrent checkpoint
    /// cannot delete the file mid-read.
    ///
    /// # Errors
    ///
    /// [`DurableError::Degraded`] when the WAL file cannot be read —
    /// reported without flipping the store degraded (the serving path
    /// may still be healthy; shipping just cannot make progress).
    pub fn export_wal(
        &self,
        generation: u64,
        offset: u64,
        max_bytes: usize,
    ) -> Result<WalExport, DurableError> {
        let _cls = pager_core::lockcheck::acquire("wal");
        let wal = self.wal.lock().unwrap_or_else(PoisonError::into_inner);
        if generation != wal.generation || offset > wal.offset {
            return Ok(WalExport::Bootstrap {
                generation: wal.generation,
            });
        }
        if offset == wal.offset {
            return Ok(WalExport::Frames {
                bytes: Vec::new(),
                end: wal.offset,
            });
        }
        let path = self.dir.join(wal_name(wal.generation));
        let bytes = match self.io.read(&path) {
            Ok(bytes) => bytes,
            Err(e) => return Err(DurableError::Degraded(format!("read WAL for export: {e}"))),
        };
        // Clamp to the tracked valid length (the file may hold an
        // unsynced tail mid-append on some backends), then cut at a
        // frame boundary within the byte budget.
        let end = wal.offset.min(bytes.len() as u64);
        if offset >= end {
            return Ok(WalExport::Frames {
                bytes: Vec::new(),
                end: offset,
            });
        }
        let window = &bytes[offset as usize..end as usize];
        let budget = window.len().min(max_bytes.max(1));
        let cut = scan(&window[..budget]).valid_len as usize;
        Ok(WalExport::Frames {
            bytes: window[..cut].to_vec(),
            end: offset + cut as u64,
        })
    }

    /// Whether enough records have accumulated that the owner should
    /// schedule a [`DurableStore::checkpoint`]. Clears the pending
    /// flag only when the checkpoint actually runs, so concurrent
    /// callers schedule it once.
    #[must_use]
    pub fn take_checkpoint_due(&self) -> bool {
        if self.config.checkpoint_every == 0 || self.degraded() {
            return false;
        }
        let due = {
            let _cls = pager_core::lockcheck::acquire("wal");
            let wal = self.wal.lock().unwrap_or_else(PoisonError::into_inner);
            wal.records_since_checkpoint >= self.config.checkpoint_every
        };
        due && !self.checkpoint_pending.swap(true, Ordering::AcqRel)
    }

    /// Undoes [`DurableStore::take_checkpoint_due`] when the caller
    /// could not schedule the checkpoint (e.g. a full worker queue):
    /// the trigger re-arms on the next ingest.
    pub fn cancel_checkpoint_schedule(&self) {
        self.checkpoint_pending.store(false, Ordering::Release);
    }

    fn enter_degraded(&self, error: &io::Error) -> DurableError {
        self.degraded.store(true, Ordering::Release);
        DurableError::Degraded(error.to_string())
    }

    /// Ingests a batch durably: apply to memory, append to the WAL,
    /// fsync per policy, then ack. On a validation error the valid
    /// prefix is still applied *and logged* (matching
    /// [`ProfileStore::observe_batch`] semantics).
    ///
    /// # Errors
    ///
    /// [`DurableError::Rejected`] for invalid sightings,
    /// [`DurableError::Degraded`] when the disk has failed (in-memory
    /// state may include the batch, but it is not durable and was not
    /// acked).
    pub fn observe_batch(
        &self,
        cells: usize,
        sightings: &[Sighting],
    ) -> Result<Vec<(String, u64)>, DurableError> {
        let records: Vec<SightingRecord> = sightings
            .iter()
            .map(|s| SightingRecord {
                device: s.device.clone(),
                cells,
                time: s.time,
                cell: s.cell,
            })
            .collect();
        self.apply_records(&records)
    }

    /// Ingests pre-framed WAL records durably — the replication apply
    /// path ([`crate::ReplicaApplier`]) and the batch ingest path
    /// share this body, so a shipped record is re-logged and fsynced
    /// by the follower exactly like a client-acked one.
    ///
    /// # Errors
    ///
    /// Same contract as [`DurableStore::observe_batch`].
    pub fn apply_records(
        &self,
        records: &[SightingRecord],
    ) -> Result<Vec<(String, u64)>, DurableError> {
        if self.degraded() {
            return Err(DurableError::Degraded("data disk previously failed".into()));
        }
        let _cls = pager_core::lockcheck::acquire("wal");
        let mut wal = self.wal.lock().unwrap_or_else(PoisonError::into_inner);
        // Encode before applying: a sighting that cannot be framed
        // (device name over the WAL's size bound, values that do not
        // fit the wire) is rejected before it touches memory or the
        // log, so an acked record is always one recovery will replay —
        // never a poison frame that truncates the log behind it. The
        // WAL never holds a record that would fail replay, and replay
        // order equals apply order.
        let mut frames = Vec::new();
        let mut versions = Vec::with_capacity(records.len());
        let mut rejected = None;
        for (i, record) in records.iter().enumerate() {
            let frame = match encode_record(record) {
                Ok(frame) => frame,
                Err(e) => {
                    rejected = Some(format!("sighting {i}: {e}"));
                    break;
                }
            };
            match self
                .store
                .observe(&record.device, record.cells, record.time, record.cell)
            {
                Ok(version) => {
                    frames.extend_from_slice(&frame);
                    versions.push((record.device.clone(), version));
                }
                Err(e) => {
                    rejected = Some(format!("sighting {i} ({:?}): {e}", record.device));
                    break;
                }
            }
        }
        let applied = versions.len() as u64;
        if applied > 0 {
            let path = self.dir.join(wal_name(wal.generation));
            if let Err(e) = self.io.append(&path, &frames) {
                return Err(self.enter_degraded(&e));
            }
            // lint:allow(atomics-ordering-audit): monotone stats counter, no handoff
            self.wal_appends.fetch_add(applied, Ordering::Relaxed);
            wal.offset += frames.len() as u64;
            wal.unsynced_records += applied;
            wal.records_since_checkpoint += applied;
            let must_sync = match self.config.fsync {
                FsyncPolicy::Always => true,
                FsyncPolicy::Interval(n) => wal.unsynced_records >= n,
                FsyncPolicy::Never => false,
            };
            if must_sync {
                if let Err(e) = self.io.sync(&path) {
                    return Err(self.enter_degraded(&e));
                }
                // lint:allow(atomics-ordering-audit): monotone stats counter, no handoff
                self.wal_fsyncs.fetch_add(1, Ordering::Relaxed);
                wal.unsynced_records = 0;
            }
            // Once per generation: make the WAL file's directory entry
            // durable before acking. A file fsync alone does not
            // guarantee a freshly created file survives a crash on
            // every filesystem.
            if !wal.dir_synced {
                if let Err(e) = self.io.sync_dir(&self.dir) {
                    return Err(self.enter_degraded(&e));
                }
                wal.dir_synced = true;
            }
        }
        match rejected {
            Some(message) => Err(DurableError::Rejected(message)),
            None => Ok(versions),
        }
    }

    /// Fsyncs any unsynced WAL tail (shutdown path for the interval /
    /// never policies).
    ///
    /// # Errors
    ///
    /// [`DurableError::Degraded`] on I/O failure.
    pub fn flush(&self) -> Result<(), DurableError> {
        let _cls = pager_core::lockcheck::acquire("wal");
        let mut wal = self.wal.lock().unwrap_or_else(PoisonError::into_inner);
        if wal.unsynced_records == 0 {
            return Ok(());
        }
        let path = self.dir.join(wal_name(wal.generation));
        match self.io.sync(&path) {
            Ok(()) => {
                // lint:allow(atomics-ordering-audit): monotone stats counter, no handoff
                self.wal_fsyncs.fetch_add(1, Ordering::Relaxed);
                wal.unsynced_records = 0;
                Ok(())
            }
            Err(e) => Err(self.enter_degraded(&e)),
        }
    }

    /// Rotates to a new generation: durable `snapshot.{G+1}` first,
    /// then appends switch to `wal.{G+1}`, then generation `G` is
    /// removed (best-effort). Holds the WAL lock throughout so no
    /// sighting can land in both the new snapshot and the old WAL.
    ///
    /// # Errors
    ///
    /// [`DurableError::Degraded`] on I/O failure (the store flips to
    /// read-only; the old generation remains the recovery point).
    pub fn checkpoint(&self) -> Result<RecoveryReport, DurableError> {
        let result = self.checkpoint_inner();
        self.checkpoint_pending.store(false, Ordering::Release);
        result
    }

    fn checkpoint_inner(&self) -> Result<RecoveryReport, DurableError> {
        if self.degraded() {
            return Err(DurableError::Degraded("data disk previously failed".into()));
        }
        let _cls = pager_core::lockcheck::acquire("wal");
        let mut wal = self.wal.lock().unwrap_or_else(PoisonError::into_inner);
        let old = wal.generation;
        let new = old + 1;
        let bytes = self.store.snapshot_bytes();
        let snapshot_path = self.dir.join(snapshot_name(new));
        if let Err(e) = write_atomic(self.io.as_ref(), &snapshot_path, &bytes) {
            return Err(self.enter_degraded(&e));
        }
        // The new snapshot is durable: appends may now switch. The
        // next generation's WAL file does not exist yet, so its first
        // append must sync the directory entry again.
        wal.generation = new;
        wal.offset = 0;
        wal.records_since_checkpoint = 0;
        wal.unsynced_records = 0;
        wal.dir_synced = false;
        // lint:allow(atomics-ordering-audit): monotone stats counter, no handoff
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
        // Old generation is now garbage; removal is best-effort (a
        // leftover pair is ignored by recovery, which prefers the
        // higher generation).
        let _ = self.io.remove(&self.dir.join(snapshot_name(old)));
        let _ = self.io.remove(&self.dir.join(wal_name(old)));
        let _ = self.io.sync_dir(&self.dir);
        Ok(RecoveryReport {
            generation: new,
            snapshot_loaded: true,
            recovered_records: 0,
            truncated_bytes: 0,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::io::MemIo;

    fn dir() -> PathBuf {
        PathBuf::from("/data")
    }

    fn sighting(device: &str, time: f64, cell: usize) -> Sighting {
        Sighting {
            device: device.to_string(),
            time,
            cell,
        }
    }

    fn open_mem(io: &Arc<MemIo>, config: DurabilityConfig) -> (DurableStore, RecoveryReport) {
        let io: Arc<dyn StorageIo> = Arc::<MemIo>::clone(io);
        DurableStore::open(io, &dir(), StoreConfig::default(), config).unwrap()
    }

    #[test]
    fn fsync_policy_parses() {
        assert_eq!(FsyncPolicy::parse("always"), Ok(FsyncPolicy::Always));
        assert_eq!(FsyncPolicy::parse("never"), Ok(FsyncPolicy::Never));
        assert_eq!(
            FsyncPolicy::parse("interval:32"),
            Ok(FsyncPolicy::Interval(32))
        );
        assert!(FsyncPolicy::parse("interval:0").is_err());
        assert!(FsyncPolicy::parse("sometimes").is_err());
    }

    #[test]
    fn acked_sightings_survive_a_crash() {
        let mem = Arc::new(MemIo::new());
        let (durable, report) = open_mem(&mem, DurabilityConfig::default());
        assert_eq!(report.recovered_records, 0);
        let acked = durable
            .observe_batch(4, &[sighting("alice", 1.0, 2), sighting("bob", 1.5, 0)])
            .unwrap();
        assert_eq!(acked.len(), 2);

        mem.crash(99);
        let (recovered, report) = open_mem(&mem, DurabilityConfig::default());
        assert_eq!(report.recovered_records, 2);
        assert_eq!(report.truncated_bytes, 0);
        let store = recovered.store();
        assert_eq!(store.len(), 2);
        // Versions resume past the acked ones.
        let bumped = recovered
            .observe_batch(4, &[sighting("carol", 2.0, 1)])
            .unwrap();
        let max_acked = acked.iter().map(|(_, v)| *v).max().unwrap();
        assert!(bumped[0].1 > max_acked, "versions regressed across restart");
    }

    #[test]
    fn unsynced_sightings_may_tear_but_recovery_keeps_a_clean_prefix() {
        let mem = Arc::new(MemIo::new());
        let config = DurabilityConfig {
            fsync: FsyncPolicy::Never,
            ..DurabilityConfig::default()
        };
        let (durable, _) = open_mem(&mem, config);
        for i in 0..20 {
            durable
                .observe_batch(4, &[sighting("alice", f64::from(i), (i as usize) % 4)])
                .unwrap();
        }
        mem.crash(5);
        let (recovered, report) = open_mem(&mem, config);
        assert!(report.recovered_records <= 20);
        // Whatever survived is a replayable prefix; the store is
        // consistent and accepts new sightings.
        recovered
            .observe_batch(4, &[sighting("alice", 100.0, 0)])
            .unwrap();
    }

    #[test]
    fn checkpoint_rotates_generations_and_compacts_the_wal() {
        let mem = Arc::new(MemIo::new());
        let (durable, _) = open_mem(&mem, DurabilityConfig::default());
        durable
            .observe_batch(4, &[sighting("alice", 1.0, 2), sighting("bob", 2.0, 3)])
            .unwrap();
        let report = durable.checkpoint().unwrap();
        assert_eq!(report.generation, 1);
        let names = mem.list(&dir()).unwrap();
        assert!(names.contains(&"snapshot.1.json".to_string()), "{names:?}");
        assert!(!names.contains(&"wal.0.log".to_string()), "{names:?}");
        assert!(!names.contains(&"snapshot.0.json".to_string()), "{names:?}");

        // Post-checkpoint sightings land in wal.1 and survive a crash.
        durable
            .observe_batch(4, &[sighting("carol", 3.0, 1)])
            .unwrap();
        mem.crash(11);
        let (recovered, report) = open_mem(&mem, DurabilityConfig::default());
        assert_eq!(report.generation, 1);
        assert!(report.snapshot_loaded);
        assert_eq!(report.recovered_records, 1);
        assert_eq!(recovered.store().len(), 3);
    }

    #[test]
    fn crash_during_checkpoint_never_loses_acked_records() {
        // Crash at every point of the checkpoint protocol (the MemIo
        // op count bounds it) and check all acked records recover.
        for crash_seed in 0..24u64 {
            let mem = Arc::new(MemIo::new());
            let (durable, _) = open_mem(&mem, DurabilityConfig::default());
            durable
                .observe_batch(4, &[sighting("alice", 1.0, 2), sighting("bob", 2.0, 3)])
                .unwrap();
            let _ = durable.checkpoint();
            durable
                .observe_batch(4, &[sighting("carol", 3.0, 1)])
                .unwrap();
            mem.crash(crash_seed);
            let (recovered, _) = open_mem(&mem, DurabilityConfig::default());
            assert_eq!(
                recovered.store().len(),
                3,
                "seed {crash_seed}: acked records lost"
            );
            for device in ["alice", "bob", "carol"] {
                assert!(
                    recovered.store().version(device).is_some(),
                    "seed {crash_seed}: {device} lost"
                );
            }
        }
    }

    #[test]
    fn io_failure_degrades_instead_of_crashing() {
        use crate::io::{FaultKind, FaultyIo};
        let mem = Arc::new(MemIo::new());
        let (durable, _) = {
            let faulty: Arc<dyn StorageIo> = Arc::new(FaultyIo::new(
                Arc::clone(&mem),
                // Survive open (a handful of ops), die on the first
                // ingest append.
                6,
                FaultKind::Error,
                7,
            ));
            DurableStore::open(
                faulty,
                &dir(),
                StoreConfig::default(),
                DurabilityConfig::default(),
            )
            .unwrap()
        };
        let mut failed = false;
        for i in 0..4 {
            match durable.observe_batch(4, &[sighting("alice", f64::from(i), 0)]) {
                Ok(_) => {}
                Err(DurableError::Degraded(_)) => {
                    failed = true;
                    break;
                }
                Err(other) => panic!("unexpected error {other:?}"),
            }
        }
        assert!(failed, "fault never fired");
        assert!(durable.degraded());
        // Reads keep serving.
        assert!(durable.store().len() <= 4);
        // Further ingest is refused, not panicking.
        assert!(matches!(
            durable.observe_batch(4, &[sighting("bob", 9.0, 0)]),
            Err(DurableError::Degraded(_))
        ));
        assert!(durable.stats().degraded);
    }

    #[test]
    fn rejected_prefix_is_still_durable() {
        let mem = Arc::new(MemIo::new());
        let (durable, _) = open_mem(&mem, DurabilityConfig::default());
        let err = durable
            .observe_batch(
                4,
                &[
                    sighting("alice", 1.0, 2),
                    sighting("bob", 2.0, 99), // cell out of range
                ],
            )
            .unwrap_err();
        assert!(matches!(err, DurableError::Rejected(_)));
        mem.crash(3);
        let (recovered, report) = open_mem(&mem, DurabilityConfig::default());
        assert_eq!(report.recovered_records, 1);
        assert!(recovered.store().version("alice").is_some());
        assert!(recovered.store().version("bob").is_none());
    }

    #[test]
    fn oversize_device_is_rejected_before_it_can_poison_the_log() {
        use crate::wal::MAX_DEVICE_BYTES;
        let mem = Arc::new(MemIo::new());
        let (durable, _) = open_mem(&mem, DurabilityConfig::default());
        durable
            .observe_batch(4, &[sighting("alice", 1.0, 2)])
            .unwrap();
        let giant = "g".repeat(MAX_DEVICE_BYTES + 1);
        let err = durable
            .observe_batch(4, &[sighting("bob", 2.0, 0), sighting(&giant, 3.0, 1)])
            .unwrap_err();
        assert!(matches!(err, DurableError::Rejected(_)), "{err:?}");
        // The oversize sighting never touched memory or the log; the
        // valid prefix (bob) was applied and logged.
        assert!(durable.store().version(&giant).is_none());
        assert!(durable.store().version("bob").is_some());

        // Every record acked so far must survive recovery intact — no
        // poison frame, no truncation.
        mem.crash(17);
        let (recovered, report) = open_mem(&mem, DurabilityConfig::default());
        assert_eq!(report.recovered_records, 2);
        assert_eq!(report.truncated_bytes, 0);
        assert!(recovered.store().version("alice").is_some());
        assert!(recovered.store().version("bob").is_some());
    }

    #[test]
    fn transient_read_error_fails_open_instead_of_recovering_stale_state() {
        use crate::io::{FaultKind, FaultyIo};
        // Healthy history: a checkpointed snapshot plus a live WAL.
        let mem = Arc::new(MemIo::new());
        let (durable, _) = open_mem(&mem, DurabilityConfig::default());
        durable
            .observe_batch(4, &[sighting("alice", 1.0, 2)])
            .unwrap();
        durable.checkpoint().unwrap();
        durable
            .observe_batch(4, &[sighting("bob", 2.0, 3)])
            .unwrap();
        drop(durable);

        // Open ops: create_dir_all, list, read snapshot.1, read wal.1.
        // A transient error on either read must fail the open — not
        // fall back to an older generation or skip WAL replay.
        for fault_at in [2u64, 3] {
            let faulty: Arc<dyn StorageIo> = Arc::new(FaultyIo::new(
                Arc::clone(&mem),
                fault_at,
                FaultKind::Error,
                1,
            ));
            let result = DurableStore::open(
                faulty,
                &dir(),
                StoreConfig::default(),
                DurabilityConfig::default(),
            );
            assert!(
                result.is_err(),
                "open succeeded past a read error at op {fault_at}"
            );
        }

        // The same state opens cleanly on a healthy disk.
        let (recovered, report) = open_mem(&mem, DurabilityConfig::default());
        assert_eq!(report.generation, 1);
        assert_eq!(report.recovered_records, 1);
        assert!(recovered.store().version("alice").is_some());
        assert!(recovered.store().version("bob").is_some());
    }

    #[test]
    fn checkpoint_due_fires_once() {
        let mem = Arc::new(MemIo::new());
        let config = DurabilityConfig {
            fsync: FsyncPolicy::Always,
            checkpoint_every: 2,
        };
        let (durable, _) = open_mem(&mem, config);
        durable
            .observe_batch(4, &[sighting("alice", 1.0, 2), sighting("bob", 2.0, 3)])
            .unwrap();
        assert!(durable.take_checkpoint_due());
        assert!(!durable.take_checkpoint_due(), "double-scheduled");
        durable.checkpoint().unwrap();
        assert!(!durable.take_checkpoint_due(), "counter not reset");
    }

    #[test]
    fn interval_policy_groups_fsyncs() {
        let mem = Arc::new(MemIo::new());
        let config = DurabilityConfig {
            fsync: FsyncPolicy::Interval(4),
            checkpoint_every: 0,
        };
        let (durable, _) = open_mem(&mem, config);
        for i in 0..8 {
            durable
                .observe_batch(4, &[sighting("alice", f64::from(i), 0)])
                .unwrap();
        }
        assert_eq!(durable.stats().wal_fsyncs, 2);
        durable.flush().unwrap();
        assert_eq!(durable.stats().wal_fsyncs, 2, "flush with nothing unsynced");
    }
}
