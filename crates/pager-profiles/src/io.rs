//! Injectable storage I/O for the durability subsystem.
//!
//! Every byte the durability layer persists flows through the
//! [`StorageIo`] trait, so the same WAL/snapshot code runs against
//! three backends:
//!
//! - [`DiskIo`] — the real filesystem (what `pager-serve` uses);
//! - [`MemIo`] — a deterministic in-memory filesystem that models
//!   *crash durability*: written bytes are volatile until `sync`, new
//!   directory entries (created, renamed, or removed names alike) are
//!   volatile until `sync_dir`, and
//!   [`MemIo::crash`] collapses the volatile state exactly the way a
//!   power cut would (unsynced appends survive only as a seeded torn
//!   prefix, unsynced renames roll back);
//! - [`FaultyIo`] — a seeded fault injector over [`MemIo`] that makes
//!   operation *N* fail, short-write, flip a bit, or "crash" the disk,
//!   so recovery paths are exercised without real crashes (the
//!   FoundationDB/tigerbeetle simulation-testing shape).
//!
//! The model is deliberately pessimistic where POSIX is vague: a
//! created or renamed entry does not survive a crash until its
//! directory is synced, and unsynced file content may tear at any byte
//! (with an occasional flipped bit in the torn tail).

use std::collections::HashMap;
use std::io;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, PoisonError};

/// The file-system surface the durability layer needs.
///
/// Path-based rather than handle-based: every operation names its
/// file, which keeps fault injection and the in-memory model trivially
/// serializable (one operation = one injection point).
pub trait StorageIo: Send + Sync {
    /// Reads a whole file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors (`NotFound` included).
    fn read(&self, path: &Path) -> io::Result<Vec<u8>>;

    /// Creates or truncates `path` and writes `data`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()>;

    /// Appends `data` to `path`, creating it if missing.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors; a failed append may have written a
    /// prefix of `data` (a *short write*).
    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()>;

    /// Makes `path`'s current content durable (`fsync`).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    fn sync(&self, path: &Path) -> io::Result<()>;

    /// Atomically renames `from` to `to` (same directory).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    fn rename(&self, from: &Path, to: &Path) -> io::Result<()>;

    /// Makes `dir`'s entry set (creates, renames, removes) durable.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    fn sync_dir(&self, dir: &Path) -> io::Result<()>;

    /// Removes a file.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    fn remove(&self, path: &Path) -> io::Result<()>;

    /// Creates `dir` and its parents.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    fn create_dir_all(&self, dir: &Path) -> io::Result<()>;

    /// File names (not paths) directly under `dir`.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    fn list(&self, dir: &Path) -> io::Result<Vec<String>>;

    /// Truncates `path` to `len` bytes (used to drop a torn WAL tail).
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    fn truncate(&self, path: &Path, len: u64) -> io::Result<()>;
}

/// Writes `data` to `path` crash-atomically: temp file in the same
/// directory → `sync` → `rename` → `sync_dir`. After a crash the file
/// holds either its old content or all of `data`, never a mixture.
///
/// # Errors
///
/// Propagates I/O errors from any step; on error the target file is
/// untouched (a stale `.tmp` sibling may remain and is ignored by
/// recovery).
pub fn write_atomic(io: &dyn StorageIo, path: &Path, data: &[u8]) -> io::Result<()> {
    let dir = path
        .parent()
        .map_or_else(|| PathBuf::from("."), Path::to_path_buf);
    let mut tmp_name = path.file_name().map_or_else(
        || "atomic".to_string(),
        |n| n.to_string_lossy().into_owned(),
    );
    tmp_name.push_str(".tmp");
    let tmp = dir.join(tmp_name);
    io.write(&tmp, data)?;
    io.sync(&tmp)?;
    io.rename(&tmp, path)?;
    io.sync_dir(&dir)
}

/// The real filesystem.
#[derive(Debug, Default, Clone, Copy)]
pub struct DiskIo;

impl StorageIo for DiskIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        std::fs::read(path)
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        std::fs::write(path, data)
    }

    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        use std::io::Write as _;
        let mut file = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        file.write_all(data)
    }

    fn sync(&self, path: &Path) -> io::Result<()> {
        std::fs::OpenOptions::new()
            .read(true)
            .open(path)?
            .sync_all()
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        std::fs::rename(from, to)
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        // Windows cannot open directories for syncing; the rename is
        // already durable-enough there. On Unix this is a real fsync
        // of the directory inode.
        match std::fs::File::open(dir) {
            Ok(handle) => handle.sync_all(),
            Err(_) => Ok(()),
        }
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        std::fs::remove_file(path)
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        std::fs::create_dir_all(dir)
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(dir)? {
            names.push(entry?.file_name().to_string_lossy().into_owned());
        }
        names.sort();
        Ok(names)
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        std::fs::OpenOptions::new()
            .write(true)
            .open(path)?
            .set_len(len)
    }
}

/// One in-memory file: the live bytes plus the bytes known durable.
#[derive(Debug, Clone, Default)]
struct MemFile {
    /// What reads see now.
    live: Vec<u8>,
    /// Content preserved across a crash *if the entry survives*
    /// (updated by `sync`).
    synced: Vec<u8>,
}

#[derive(Debug, Default)]
struct MemState {
    /// The live namespace.
    files: HashMap<PathBuf, MemFile>,
    /// Entries guaranteed to survive a crash under their current name.
    durable_names: std::collections::HashSet<PathBuf>,
    /// Synced content of durable entries whose live file was renamed
    /// away or removed; the old name still resurfaces on crash until
    /// its directory is synced.
    orphans: HashMap<PathBuf, Vec<u8>>,
    /// Directories that exist.
    dirs: std::collections::HashSet<PathBuf>,
}

/// Deterministic in-memory filesystem with a crash model.
#[derive(Debug, Default)]
pub struct MemIo {
    fs: Mutex<MemState>,
}

/// SplitMix64 — the deterministic generator behind the crash/fault
/// schedules (no external RNG dependency, no global state).
fn split_mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl MemIo {
    /// An empty in-memory filesystem.
    #[must_use]
    pub fn new() -> MemIo {
        MemIo::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MemState> {
        self.fs.lock().unwrap_or_else(PoisonError::into_inner)
    }

    /// Simulates a power cut and reboot, deterministically from
    /// `seed`: volatile directory operations roll back, and each
    /// file's unsynced tail survives only as a seeded prefix —
    /// occasionally with one flipped bit, the way a torn sector reads
    /// back garbage.
    pub fn crash(&self, seed: u64) {
        let mut fs = self.lock();
        let mut rng = seed ^ 0xD1F7_5EED;
        let mut survivors: HashMap<PathBuf, MemFile> = HashMap::new();
        // Deterministic iteration: sort the durable names. Orphans
        // are durable entries whose rename/remove was never made
        // durable by a directory sync — the old name comes back.
        let mut names: Vec<PathBuf> = fs
            .durable_names
            .iter()
            .chain(fs.orphans.keys())
            .cloned()
            .collect();
        names.sort();
        names.dedup();
        for name in names {
            let mut content = match (fs.files.get(&name), fs.orphans.get(&name)) {
                (Some(file), _) => {
                    // Entry survives: synced prefix plus a torn piece
                    // of whatever was appended after the last sync.
                    let mut kept = file.synced.clone();
                    if file.live.len() > kept.len() && file.live.starts_with(&kept) {
                        let tail = &file.live[kept.len()..];
                        let keep = (split_mix(&mut rng) as usize) % (tail.len() + 1);
                        kept.extend_from_slice(&tail[..keep]);
                        if keep > 0 && split_mix(&mut rng).is_multiple_of(4) {
                            let bit = (split_mix(&mut rng) as usize) % (keep * 8);
                            let idx = kept.len() - keep + bit / 8;
                            kept[idx] ^= 1 << (bit % 8);
                        }
                    }
                    kept
                }
                (None, Some(old)) => old.clone(),
                (None, None) => Vec::new(),
            };
            content.shrink_to_fit();
            survivors.insert(
                name,
                MemFile {
                    live: content.clone(),
                    synced: content,
                },
            );
        }
        fs.files = survivors;
        fs.durable_names = fs.files.keys().cloned().collect();
        fs.orphans.clear();
    }

    /// Total live bytes across all files (test introspection).
    #[must_use]
    pub fn total_bytes(&self) -> usize {
        self.lock().files.values().map(|f| f.live.len()).sum()
    }
}

fn not_found(path: &Path) -> io::Error {
    io::Error::new(
        io::ErrorKind::NotFound,
        format!("{}: no such file", path.display()),
    )
}

impl StorageIo for MemIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        let fs = self.lock();
        fs.files
            .get(path)
            .map(|f| f.live.clone())
            .ok_or_else(|| not_found(path))
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let mut fs = self.lock();
        let file = fs.files.entry(path.to_path_buf()).or_default();
        file.live = data.to_vec();
        Ok(())
    }

    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        let mut fs = self.lock();
        let file = fs.files.entry(path.to_path_buf()).or_default();
        file.live.extend_from_slice(data);
        Ok(())
    }

    fn sync(&self, path: &Path) -> io::Result<()> {
        let mut fs = self.lock();
        let file = fs.files.get_mut(path).ok_or_else(|| not_found(path))?;
        file.synced = file.live.clone();
        // Pessimistic POSIX: fsync makes the *content* durable, but a
        // freshly created entry survives a crash only once its
        // directory is synced. Modeling the ext4-style
        // entry-on-fsync courtesy here would hide missing sync_dir
        // calls from every crash test.
        Ok(())
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        let mut fs = self.lock();
        let node = fs.files.remove(from).ok_or_else(|| not_found(from))?;
        // The old name stays durable (pointing at its synced content)
        // until the directory itself is synced.
        if fs.durable_names.remove(from) {
            let synced = node.synced.clone();
            fs.orphans.insert(from.to_path_buf(), synced);
        }
        // Likewise an overwritten target keeps its old durable bytes.
        if let Some(old) = fs.files.get(to) {
            if fs.durable_names.contains(to) {
                let synced = old.synced.clone();
                fs.orphans.insert(to.to_path_buf(), synced);
            }
        }
        fs.durable_names.remove(to);
        fs.files.insert(to.to_path_buf(), node);
        Ok(())
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        let mut fs = self.lock();
        let under = |p: &Path| p.parent() == Some(dir);
        let present: Vec<PathBuf> = fs.files.keys().filter(|p| under(p)).cloned().collect();
        fs.durable_names.retain(|p| !under(p));
        for path in present {
            fs.durable_names.insert(path);
        }
        fs.orphans.retain(|p, _| !under(p));
        Ok(())
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        let mut fs = self.lock();
        let node = fs.files.remove(path).ok_or_else(|| not_found(path))?;
        if fs.durable_names.remove(path) {
            fs.orphans.insert(path.to_path_buf(), node.synced);
        }
        Ok(())
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.lock().dirs.insert(dir.to_path_buf());
        Ok(())
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        let fs = self.lock();
        let mut names: Vec<String> = fs
            .files
            .keys()
            .filter(|p| p.parent() == Some(dir))
            .filter_map(|p| p.file_name().map(|n| n.to_string_lossy().into_owned()))
            .collect();
        names.sort();
        Ok(names)
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        let mut fs = self.lock();
        let file = fs.files.get_mut(path).ok_or_else(|| not_found(path))?;
        let len = usize::try_from(len).unwrap_or(usize::MAX);
        if len < file.live.len() {
            file.live.truncate(len);
        }
        Ok(())
    }
}

/// What [`FaultyIo`] does at its scheduled operation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// The operation fails with an I/O error; later operations
    /// succeed (a transient disk hiccup).
    Error,
    /// The operation fails and every later one does too (the disk is
    /// gone); pair with [`MemIo::crash`] to model a reboot.
    Crash,
    /// A write/append persists only a seeded prefix of its bytes,
    /// then fails (a torn write). Non-write operations fail plainly.
    ShortWrite,
    /// A write/append silently persists with one bit flipped (media
    /// corruption the checksums must catch).
    FlipBit,
}

/// Deterministic fault injection over a [`MemIo`].
///
/// Operations are numbered in call order; at operation `fault_at` the
/// configured [`FaultKind`] fires. [`FaultyIo::from_seed`] derives the
/// whole schedule from one integer so a failing schedule reproduces
/// exactly.
pub struct FaultyIo {
    inner: std::sync::Arc<MemIo>,
    ops: AtomicU64,
    fault_at: u64,
    kind: FaultKind,
    seed: u64,
    dead: AtomicBool,
}

impl FaultyIo {
    /// Injects `kind` at operation `fault_at` (0-based).
    #[must_use]
    pub fn new(
        inner: std::sync::Arc<MemIo>,
        fault_at: u64,
        kind: FaultKind,
        seed: u64,
    ) -> FaultyIo {
        FaultyIo {
            inner,
            ops: AtomicU64::new(0),
            fault_at,
            kind,
            seed,
            dead: AtomicBool::new(false),
        }
    }

    /// Derives `(fault_at, kind)` from `seed`: the operation index is
    /// `seed`-uniform below `horizon` and the kind cycles through all
    /// four, so a `0..n` seed sweep covers the schedule space evenly.
    #[must_use]
    pub fn from_seed(inner: std::sync::Arc<MemIo>, seed: u64, horizon: u64) -> FaultyIo {
        let mut state = seed ^ 0xFA17_1EED;
        let fault_at = split_mix(&mut state) % horizon.max(1);
        let kind = match split_mix(&mut state) % 4 {
            0 => FaultKind::Error,
            1 => FaultKind::Crash,
            2 => FaultKind::ShortWrite,
            _ => FaultKind::FlipBit,
        };
        FaultyIo::new(inner, fault_at, kind, seed)
    }

    /// The scheduled fault kind.
    #[must_use]
    pub fn kind(&self) -> FaultKind {
        self.kind
    }

    /// The scheduled operation index.
    #[must_use]
    pub fn fault_at(&self) -> u64 {
        self.fault_at
    }

    /// Whether the simulated disk has died (a [`FaultKind::Crash`]
    /// fired).
    #[must_use]
    pub fn dead(&self) -> bool {
        self.dead.load(Ordering::Acquire)
    }

    /// Operations attempted so far.
    #[must_use]
    pub fn operations(&self) -> u64 {
        self.ops.load(Ordering::Acquire)
    }

    /// `Some(kind)` when this call is the faulty one.
    fn tick(&self) -> io::Result<Option<FaultKind>> {
        if self.dead.load(Ordering::Acquire) {
            return Err(io::Error::other("injected fault: disk is gone"));
        }
        let n = self.ops.fetch_add(1, Ordering::AcqRel);
        if n != self.fault_at {
            return Ok(None);
        }
        match self.kind {
            FaultKind::Crash => {
                self.dead.store(true, Ordering::Release);
                Err(io::Error::other("injected fault: disk died"))
            }
            kind => Ok(Some(kind)),
        }
    }

    /// Applies write-shaped faults; `append` says whether partial data
    /// should be appended or written whole-file.
    fn faulty_write(&self, path: &Path, data: &[u8], append: bool) -> io::Result<()> {
        let Some(kind) = self.tick()? else {
            return if append {
                self.inner.append(path, data)
            } else {
                self.inner.write(path, data)
            };
        };
        match kind {
            FaultKind::ShortWrite => {
                let mut state = self.seed ^ 0x5807_1e1d;
                let keep = (split_mix(&mut state) as usize) % (data.len() + 1);
                if append {
                    self.inner.append(path, &data[..keep])?;
                } else {
                    self.inner.write(path, &data[..keep])?;
                }
                Err(io::Error::other("injected fault: short write"))
            }
            FaultKind::FlipBit => {
                let mut corrupted = data.to_vec();
                if !corrupted.is_empty() {
                    let mut state = self.seed ^ 0xF11B;
                    let bit = (split_mix(&mut state) as usize) % (corrupted.len() * 8);
                    corrupted[bit / 8] ^= 1 << (bit % 8);
                }
                if append {
                    self.inner.append(path, &corrupted)
                } else {
                    self.inner.write(path, &corrupted)
                }
            }
            FaultKind::Error | FaultKind::Crash => {
                Err(io::Error::other("injected fault: I/O error"))
            }
        }
    }

    /// Applies the fault schedule to a non-write operation.
    fn faulty_op<T>(&self, op: impl FnOnce() -> io::Result<T>) -> io::Result<T> {
        match self.tick()? {
            // Write-shaped faults degrade to a plain error on
            // operations with no data to tear or flip.
            Some(_) => Err(io::Error::other("injected fault: I/O error")),
            None => op(),
        }
    }
}

impl StorageIo for FaultyIo {
    fn read(&self, path: &Path) -> io::Result<Vec<u8>> {
        self.faulty_op(|| self.inner.read(path))
    }

    fn write(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        self.faulty_write(path, data, false)
    }

    fn append(&self, path: &Path, data: &[u8]) -> io::Result<()> {
        self.faulty_write(path, data, true)
    }

    fn sync(&self, path: &Path) -> io::Result<()> {
        self.faulty_op(|| self.inner.sync(path))
    }

    fn rename(&self, from: &Path, to: &Path) -> io::Result<()> {
        self.faulty_op(|| self.inner.rename(from, to))
    }

    fn sync_dir(&self, dir: &Path) -> io::Result<()> {
        self.faulty_op(|| self.inner.sync_dir(dir))
    }

    fn remove(&self, path: &Path) -> io::Result<()> {
        self.faulty_op(|| self.inner.remove(path))
    }

    fn create_dir_all(&self, dir: &Path) -> io::Result<()> {
        self.faulty_op(|| self.inner.create_dir_all(dir))
    }

    fn list(&self, dir: &Path) -> io::Result<Vec<String>> {
        self.faulty_op(|| self.inner.list(dir))
    }

    fn truncate(&self, path: &Path, len: u64) -> io::Result<()> {
        self.faulty_op(|| self.inner.truncate(path, len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn p(s: &str) -> PathBuf {
        PathBuf::from(s)
    }

    #[test]
    fn mem_io_round_trip() {
        let io = MemIo::new();
        io.write(&p("/d/a"), b"hello").unwrap();
        io.append(&p("/d/a"), b" world").unwrap();
        assert_eq!(io.read(&p("/d/a")).unwrap(), b"hello world");
        assert!(io.read(&p("/d/missing")).is_err());
        io.truncate(&p("/d/a"), 5).unwrap();
        assert_eq!(io.read(&p("/d/a")).unwrap(), b"hello");
        assert_eq!(io.list(&p("/d")).unwrap(), vec!["a".to_string()]);
    }

    #[test]
    fn unsynced_writes_do_not_survive_a_crash() {
        let io = MemIo::new();
        io.write(&p("/d/a"), b"durable").unwrap();
        io.sync(&p("/d/a")).unwrap();
        io.sync_dir(&p("/d")).unwrap();
        io.write(&p("/d/b"), b"volatile").unwrap();
        io.crash(1);
        assert_eq!(io.read(&p("/d/a")).unwrap(), b"durable");
        assert!(io.read(&p("/d/b")).is_err(), "unsynced file survived");
    }

    #[test]
    fn fsync_alone_does_not_persist_a_new_entry() {
        // Pessimistic POSIX: the file's bytes are synced but its
        // directory entry is not — a crash loses the whole file.
        let io = MemIo::new();
        io.write(&p("/d/a"), b"content").unwrap();
        io.sync(&p("/d/a")).unwrap();
        io.crash(1);
        assert!(
            io.read(&p("/d/a")).is_err(),
            "entry survived without a directory sync"
        );
    }

    #[test]
    fn unsynced_appends_tear_at_a_seeded_point() {
        for seed in 0..32 {
            let io = MemIo::new();
            io.write(&p("/d/wal"), b"synced").unwrap();
            io.sync(&p("/d/wal")).unwrap();
            io.sync_dir(&p("/d")).unwrap();
            io.append(&p("/d/wal"), b"0123456789").unwrap();
            io.crash(seed);
            let after = io.read(&p("/d/wal")).unwrap();
            assert!(after.len() >= b"synced".len(), "synced prefix lost");
            assert!(after.len() <= b"synced0123456789".len());
            assert_eq!(&after[..4], b"sync", "synced bytes corrupted");
        }
    }

    #[test]
    fn unsynced_rename_rolls_back_on_crash() {
        let io = MemIo::new();
        io.write(&p("/d/tmp"), b"snapshot").unwrap();
        io.sync(&p("/d/tmp")).unwrap();
        io.sync_dir(&p("/d")).unwrap();
        io.rename(&p("/d/tmp"), &p("/d/snap")).unwrap();
        // No second sync_dir: the rename is volatile.
        io.crash(7);
        assert_eq!(io.read(&p("/d/tmp")).unwrap(), b"snapshot");
        assert!(io.read(&p("/d/snap")).is_err(), "volatile rename survived");
    }

    #[test]
    fn synced_rename_survives_crash() {
        let io = MemIo::new();
        io.write(&p("/d/tmp"), b"snapshot").unwrap();
        io.sync(&p("/d/tmp")).unwrap();
        io.rename(&p("/d/tmp"), &p("/d/snap")).unwrap();
        io.sync_dir(&p("/d")).unwrap();
        io.crash(7);
        assert_eq!(io.read(&p("/d/snap")).unwrap(), b"snapshot");
        assert!(io.read(&p("/d/tmp")).is_err(), "old name survived dir sync");
    }

    #[test]
    fn write_atomic_is_all_or_nothing_across_crashes() {
        let io = MemIo::new();
        io.write(&p("/d/file"), b"old").unwrap();
        io.sync(&p("/d/file")).unwrap();
        io.sync_dir(&p("/d")).unwrap();
        write_atomic(&io, &p("/d/file"), b"new-content").unwrap();
        io.crash(3);
        assert_eq!(io.read(&p("/d/file")).unwrap(), b"new-content");
    }

    #[test]
    fn faulty_io_fires_exactly_once_unless_crash() {
        let mem = Arc::new(MemIo::new());
        let io = FaultyIo::new(Arc::clone(&mem), 1, FaultKind::Error, 0);
        io.write(&p("/d/a"), b"x").unwrap(); // op 0
        assert!(io.write(&p("/d/a"), b"y").is_err()); // op 1: fault
        io.write(&p("/d/a"), b"z").unwrap(); // op 2: healthy again

        let io = FaultyIo::new(Arc::clone(&mem), 0, FaultKind::Crash, 0);
        assert!(io.write(&p("/d/a"), b"x").is_err());
        assert!(io.dead());
        assert!(io.read(&p("/d/a")).is_err(), "dead disk answered");
    }

    #[test]
    fn short_write_persists_a_prefix() {
        let mem = Arc::new(MemIo::new());
        let io = FaultyIo::new(Arc::clone(&mem), 0, FaultKind::ShortWrite, 42);
        assert!(io.append(&p("/d/wal"), b"0123456789").is_err());
        let written = mem.read(&p("/d/wal")).map_or(0, |b| b.len());
        assert!(written <= 10, "wrote more than the data");
    }

    #[test]
    fn flip_bit_corrupts_silently() {
        let mem = Arc::new(MemIo::new());
        let io = FaultyIo::new(Arc::clone(&mem), 0, FaultKind::FlipBit, 9);
        io.append(&p("/d/wal"), &[0u8; 16]).unwrap();
        let bytes = mem.read(&p("/d/wal")).unwrap();
        let ones: u32 = bytes.iter().map(|b| b.count_ones()).sum();
        assert_eq!(ones, 1, "exactly one flipped bit");
    }

    #[test]
    fn seeded_schedules_are_deterministic() {
        for seed in 0..16 {
            let a = FaultyIo::from_seed(Arc::new(MemIo::new()), seed, 100);
            let b = FaultyIo::from_seed(Arc::new(MemIo::new()), seed, 100);
            assert_eq!(a.fault_at(), b.fault_at());
            assert_eq!(a.kind(), b.kind());
            assert!(a.fault_at() < 100);
        }
    }
}
