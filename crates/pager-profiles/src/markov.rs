//! First-order Markov mobility model.
//!
//! Counts observed cell→cell transitions and predicts where a device
//! is *now* from its last confirmed sighting and the elapsed time: the
//! smoothed transition matrix is applied once per elapsed step, so the
//! prediction starts concentrated at the last sighting and diffuses
//! toward the chain's stationary distribution — exactly the behaviour
//! the paper's profile-acquisition citations [15, 16] assume of a
//! trajectory predictor.

use crate::estimators;

/// Transition-count model over `c` cells.
#[derive(Debug, Clone, PartialEq)]
pub struct MarkovModel {
    cells: usize,
    /// Row-major `counts[from * cells + to]`.
    counts: Vec<u64>,
    /// Per-row totals (cached so a row normalisation is `O(c)`).
    row_totals: Vec<u64>,
}

impl MarkovModel {
    /// An empty model over `c` cells.
    ///
    /// # Panics
    ///
    /// Panics if `c == 0`.
    #[must_use]
    pub fn new(cells: usize) -> MarkovModel {
        assert!(cells > 0, "need at least one cell");
        MarkovModel {
            cells,
            counts: vec![0; cells * cells],
            row_totals: vec![0; cells],
        }
    }

    /// Number of cells.
    #[must_use]
    pub fn num_cells(&self) -> usize {
        self.cells
    }

    /// Total transitions observed.
    #[must_use]
    pub fn num_transitions(&self) -> u64 {
        self.row_totals.iter().sum()
    }

    /// Records one observed transition.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range cells.
    pub fn observe(&mut self, from: usize, to: usize) {
        assert!(from < self.cells, "from-cell {from} out of range");
        assert!(to < self.cells, "to-cell {to} out of range");
        self.counts[from * self.cells + to] += 1;
        self.row_totals[from] += 1;
    }

    /// Raw count of the `from → to` transition.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range cells.
    #[must_use]
    pub fn count(&self, from: usize, to: usize) -> u64 {
        assert!(from < self.cells && to < self.cells, "cell out of range");
        self.counts[from * self.cells + to]
    }

    /// The Laplace-smoothed transition row out of `from`:
    /// `P(to | from) = (count + α) / (row_total + c·α)`. With `α > 0`
    /// the row is strictly positive even for never-visited cells.
    ///
    /// # Panics
    ///
    /// Panics if `from` is out of range, `alpha < 0`, or the row is
    /// empty with `alpha == 0`.
    #[must_use]
    pub fn transition_row(&self, from: usize, alpha: f64) -> Vec<f64> {
        assert!(from < self.cells, "from-cell {from} out of range");
        let row = &self.counts[from * self.cells..(from + 1) * self.cells];
        #[allow(clippy::cast_precision_loss)]
        let counts: Vec<f64> = row.iter().map(|&n| n as f64).collect();
        estimators::empirical_from_counts(&counts, alpha)
    }

    /// Predicts the location distribution `steps` time units after a
    /// confirmed sighting in `from`, by repeated application of the
    /// smoothed transition matrix to the point mass at `from`.
    ///
    /// `steps == 0` returns the smoothed point mass (the device was
    /// just seen there; smoothing keeps the row strictly positive as
    /// the paper's model requires). Predictions converge to the
    /// chain's stationary distribution, so callers cap `steps` at a
    /// horizon after which another multiplication changes nothing
    /// measurable.
    ///
    /// # Panics
    ///
    /// Panics if `from` is out of range or `alpha < 0`.
    #[must_use]
    pub fn predict(&self, from: usize, steps: usize, alpha: f64) -> Vec<f64> {
        assert!(from < self.cells, "from-cell {from} out of range");
        assert!(alpha >= 0.0, "smoothing must be non-negative");
        if steps == 0 {
            let mut point = vec![0.0; self.cells];
            point[from] = 1.0;
            return estimators::empirical_from_counts(&point, alpha.max(f64::MIN_POSITIVE));
        }
        // Pre-normalise each row once; the multiply loop then reads
        // plain slices.
        let rows: Vec<Vec<f64>> = (0..self.cells)
            .map(|i| self.transition_row(i, alpha.max(f64::MIN_POSITIVE)))
            .collect();
        let mut dist = vec![0.0f64; self.cells];
        dist[from] = 1.0;
        let mut next = vec![0.0f64; self.cells];
        for _ in 0..steps {
            next.iter_mut().for_each(|x| *x = 0.0);
            for (i, &mass) in dist.iter().enumerate() {
                // lint:allow(no-float-eq): exact-zero skip is an optimisation only
                if mass == 0.0 {
                    continue;
                }
                for (j, &p) in rows[i].iter().enumerate() {
                    next[j] += mass * p;
                }
            }
            std::mem::swap(&mut dist, &mut next);
        }
        // Repeated multiplication accumulates rounding residue; a
        // final renormalisation restores Σp = 1 to machine precision.
        let total: f64 = dist.iter().sum();
        dist.iter_mut().for_each(|x| *x /= total);
        dist
    }
}

/// Snapshot conversions (kept next to the model so the layout stays in
/// one file).
impl MarkovModel {
    /// Renders counts as a JSON array of rows.
    #[must_use]
    pub fn to_json(&self) -> jsonio::Value {
        jsonio::Value::Array(
            (0..self.cells)
                .map(|i| {
                    jsonio::Value::Array(
                        self.counts[i * self.cells..(i + 1) * self.cells]
                            .iter()
                            .map(|&n| jsonio::Value::from(n))
                            .collect(),
                    )
                })
                .collect(),
        )
    }

    /// Rebuilds a model from [`MarkovModel::to_json`] output.
    ///
    /// # Errors
    ///
    /// A message on a malformed or non-square payload.
    pub fn from_json(value: &jsonio::Value) -> Result<MarkovModel, String> {
        let rows = value
            .as_array()
            .ok_or_else(|| "markov counts must be an array of rows".to_string())?;
        let cells = rows.len();
        if cells == 0 {
            return Err("markov counts must be non-empty".to_string());
        }
        let mut model = MarkovModel::new(cells);
        for (i, row) in rows.iter().enumerate() {
            let row = row
                .as_array()
                .ok_or_else(|| "markov count row must be an array".to_string())?;
            if row.len() != cells {
                return Err(format!(
                    "markov count row {i} has {} entries, expected {cells}",
                    row.len()
                ));
            }
            for (j, n) in row.iter().enumerate() {
                let n = n
                    .as_u64()
                    .ok_or_else(|| format!("markov count ({i},{j}) must be a u64, got {n}"))?;
                model.counts[i * cells + j] = n;
                model.row_totals[i] += n;
            }
        }
        Ok(model)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimators::total_variation;

    #[test]
    fn rows_are_distributions() {
        let mut m = MarkovModel::new(3);
        m.observe(0, 1);
        m.observe(0, 1);
        m.observe(0, 2);
        let row = m.transition_row(0, 0.5);
        let sum: f64 = row.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert!(row.iter().all(|&p| p > 0.0));
        assert!(row[1] > row[2] && row[2] > row[0]);
        // Unvisited row falls back to the smoothed uniform.
        let empty = m.transition_row(2, 1.0);
        assert!(empty.iter().all(|&p| (p - 1.0 / 3.0).abs() < 1e-12));
    }

    #[test]
    fn predict_zero_steps_is_concentrated() {
        let m = MarkovModel::new(4);
        let p = m.predict(2, 0, 0.1);
        assert!(p[2] > 0.5, "{p:?}");
        assert!(p.iter().all(|&x| x > 0.0));
        let sum: f64 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn predict_diffuses_toward_stationary() {
        // Deterministic 0→1→0 cycle, heavily observed.
        let mut m = MarkovModel::new(2);
        for _ in 0..500 {
            m.observe(0, 1);
            m.observe(1, 0);
        }
        let one = m.predict(0, 1, 0.01);
        assert!(one[1] > 0.95, "{one:?}");
        // Many steps with smoothing: mass spreads toward 50/50.
        let far = m.predict(0, 501, 1.0);
        assert!(total_variation(&far, &[0.5, 0.5]) < 0.1, "{far:?}");
    }

    #[test]
    fn json_round_trip() {
        let mut m = MarkovModel::new(3);
        m.observe(0, 1);
        m.observe(1, 2);
        m.observe(2, 2);
        let back = MarkovModel::from_json(&m.to_json()).unwrap();
        assert_eq!(back, m);
        assert_eq!(back.num_transitions(), 3);
        assert!(MarkovModel::from_json(&jsonio::parse("[[1,2],[3]]").unwrap()).is_err());
        assert!(MarkovModel::from_json(&jsonio::parse("[]").unwrap()).is_err());
    }
}
