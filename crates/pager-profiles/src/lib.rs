//! Online location-profile store for conference-call paging.
//!
//! The paper's planners (in `pager-core`) take each device's location
//! *distribution* as given, citing its refs [15, 16] for how real
//! systems acquire them from movement histories. This crate is that
//! acquisition layer, online: sightings stream in append-only and
//! versioned per-device profiles stream planner-ready rows out.
//!
//! # Pieces
//!
//! - [`estimators`] — the canonical distribution math (Laplace
//!   empirical, exponential recency, staleness blends);
//!   `cellnet::estimator` re-exports these so offline trace analysis
//!   and this online store cannot drift apart.
//! - [`MarkovModel`] — first-order cell→cell mobility model predicting
//!   the current distribution from the last sighting and the elapsed
//!   time.
//! - [`DeviceProfile`] / [`ProfileConfig`] — one device's versioned
//!   profile: all three estimators plus a configurable staleness decay
//!   toward uniform.
//! - [`ProfileStore`] — the concurrent sharded store: ingest, LRU
//!   eviction under a capacity bound, globally monotone versions (so a
//!   strategy cache keyed on versions can never serve a plan built
//!   from older data), and `jsonio` snapshots.
//! - [`DurableStore`] / [`ReplicaApplier`] — crash-safe persistence
//!   (WAL + generation-numbered snapshots) and the WAL-shipping
//!   replication endpoints built on it: leaders export snapshot
//!   images and log frames, followers apply them exactly once behind
//!   a durable cursor.
//! - [`replay`](fn@replay) — the loop-closing harness: ground-truth
//!   mobility → ingest → plan → `pager_core::simulation::run_search`,
//!   reporting realised paging cost against the Lemma 2.1 expectation.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod durable;
pub mod estimators;
pub mod io;
mod markov;
mod profile;
mod replay;
mod replica;
mod store;
pub mod wal;

pub use durable::{
    DurabilityConfig, DurabilityStats, DurableError, DurableStore, FsyncPolicy, RecoveryReport,
    SnapshotExport, WalExport, WalPosition,
};
pub use markov::MarkovModel;
pub use profile::{DeviceProfile, Estimator, ProfileConfig, Time};
pub use replay::{replay, CallRecord, ReplayConfig, ReplayReport, Step};
pub use replica::{ApplyOutcome, CursorStatus, ReplicaApplier};
pub use store::{ProfileStore, Sighting, StoreConfig, StoreStats};
