//! Concurrent, versioned per-device profile store.
//!
//! Sightings stream in append-only ([`ProfileStore::observe`] /
//! [`ProfileStore::observe_batch`]); planners read planner-ready
//! distributions out ([`ProfileStore::distribution`],
//! [`ProfileStore::instance_for`]). Devices are sharded by a hash of
//! their ID so concurrent ingest and reads on different devices never
//! contend, mirroring the `pager-service` strategy cache.
//!
//! Versions are drawn from one global monotone counter and stamped
//! onto the profile on every sighting, so a device's version strictly
//! increases across its lifetime *including* eviction and
//! re-admission — exactly the property the serving layer needs to key
//! strategy-cache lookups such that a profile update can never be
//! answered with a plan computed from older data.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use jsonio::Value;
use pager_core::Instance;

use crate::profile::{DeviceProfile, Estimator, ProfileConfig, Time};

/// One sighting on the wire: a device was seen in a cell at a time.
#[derive(Debug, Clone, PartialEq)]
pub struct Sighting {
    /// Opaque device identifier.
    pub device: String,
    /// The cell it was seen in.
    pub cell: usize,
    /// When it was seen.
    pub time: Time,
}

/// Store sizing and estimation knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StoreConfig {
    /// Estimation parameters shared by every profile.
    pub profile: ProfileConfig,
    /// Maximum tracked devices across all shards; the least recently
    /// *sighted* device is evicted on overflow.
    pub capacity: usize,
    /// Independent shards (each behind its own lock).
    pub shards: usize,
}

impl Default for StoreConfig {
    fn default() -> StoreConfig {
        StoreConfig {
            profile: ProfileConfig::default(),
            capacity: 65_536,
            shards: 16,
        }
    }
}

/// A snapshot of the store's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StoreStats {
    /// Devices currently tracked.
    pub devices: usize,
    /// Total sightings ingested since creation (or snapshot load).
    pub sightings: u64,
    /// Profiles evicted to make room.
    pub evictions: u64,
    /// The global version counter (the largest version ever issued).
    pub version: u64,
}

struct Shard {
    map: HashMap<String, StoredProfile>,
    tick: u64,
}

struct StoredProfile {
    profile: DeviceProfile,
    last_used: u64,
}

/// The concurrent profile store.
pub struct ProfileStore {
    config: StoreConfig,
    shards: Vec<Mutex<Shard>>,
    per_shard_capacity: usize,
    version: AtomicU64,
    sightings: AtomicU64,
    evictions: AtomicU64,
    /// Largest sighting time ever ingested (bits of an `f64`), used as
    /// the default "now" when callers do not supply a clock.
    latest_time: Mutex<Time>,
}

impl ProfileStore {
    /// Creates a store.
    ///
    /// # Errors
    ///
    /// A message when the profile knobs are invalid.
    pub fn new(config: StoreConfig) -> Result<ProfileStore, String> {
        config.profile.validate()?;
        let shards = config.shards.max(1);
        Ok(ProfileStore {
            per_shard_capacity: config.capacity.div_ceil(shards).max(1),
            shards: (0..shards)
                .map(|_| {
                    Mutex::new(Shard {
                        map: HashMap::new(),
                        tick: 0,
                    })
                })
                .collect(),
            config,
            version: AtomicU64::new(0),
            sightings: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
            latest_time: Mutex::new(f64::NEG_INFINITY),
        })
    }

    /// The configuration the store was built with.
    #[must_use]
    pub fn config(&self) -> &StoreConfig {
        &self.config
    }

    /// Number of devices currently tracked.
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("profile shard poisoned").map.len())
            .sum()
    }

    /// Whether no devices are tracked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Counter snapshot.
    #[must_use]
    pub fn stats(&self) -> StoreStats {
        StoreStats {
            devices: self.len(),
            // lint:allow(atomics-ordering-audit): monotone stats counters, no handoff
            sightings: self.sightings.load(Ordering::Relaxed),
            // lint:allow(atomics-ordering-audit): monotone stats counter, no handoff
            evictions: self.evictions.load(Ordering::Relaxed),
            version: self.version.load(Ordering::Acquire),
        }
    }

    /// The largest sighting time ingested so far (`None` before the
    /// first sighting) — the store's idea of "now".
    #[must_use]
    pub fn latest_time(&self) -> Option<Time> {
        let t = *self.latest_time.lock().expect("latest_time poisoned");
        t.is_finite().then_some(t)
    }

    fn shard_for(&self, device: &str) -> &Mutex<Shard> {
        &self.shards[fnv1a(device) as usize % self.shards.len()]
    }

    /// Ingests one sighting of `device` (seen in `cell` of a
    /// `cells`-cell area at `time`), creating the profile on first
    /// sight. Returns the device's new version.
    ///
    /// # Errors
    ///
    /// A message on an out-of-range cell, a per-device time
    /// regression, or a `cells` value that disagrees with the
    /// device's existing profile.
    pub fn observe(
        &self,
        device: &str,
        cells: usize,
        time: Time,
        cell: usize,
    ) -> Result<u64, String> {
        if cells == 0 {
            return Err("cells must be positive".to_string());
        }
        if cell >= cells {
            return Err(format!("cell {cell} out of range for {cells} cells"));
        }
        let mut shard = self
            .shard_for(device)
            .lock()
            .expect("profile shard poisoned");
        shard.tick += 1;
        let tick = shard.tick;
        if !shard.map.contains_key(device) {
            if shard.map.len() >= self.per_shard_capacity {
                if let Some(oldest) = shard
                    .map
                    .iter()
                    .min_by_key(|(_, e)| e.last_used)
                    .map(|(k, _)| k.clone())
                {
                    shard.map.remove(&oldest);
                    // lint:allow(atomics-ordering-audit): monotone stats counter, no handoff
                    self.evictions.fetch_add(1, Ordering::Relaxed);
                }
            }
            shard.map.insert(
                device.to_string(),
                StoredProfile {
                    profile: DeviceProfile::new(cells),
                    last_used: tick,
                },
            );
        }
        let entry = shard.map.get_mut(device).expect("just inserted");
        if entry.profile.num_cells() != cells {
            return Err(format!(
                "device {device:?} has a {}-cell profile, sighting says {cells}",
                entry.profile.num_cells()
            ));
        }
        // The version is drawn *before* the fallible observe; a gap in
        // the sequence is fine, reuse is not.
        // AcqRel: versions flow into plan-cache keys on other threads;
        // a thread that reads version v must also see the profile write
        // it tags (the Acquire loads in stats/to_json pair with this).
        let version = self.version.fetch_add(1, Ordering::AcqRel) + 1;
        entry
            .profile
            .observe(time, cell, version, &self.config.profile)?;
        entry.last_used = tick;
        drop(shard);
        // lint:allow(atomics-ordering-audit): monotone stats counter, no handoff
        self.sightings.fetch_add(1, Ordering::Relaxed);
        let mut latest = self.latest_time.lock().expect("latest_time poisoned");
        if time > *latest {
            *latest = time;
        }
        Ok(version)
    }

    /// Ingests a batch, stopping at the first bad sighting. Returns
    /// `(device, new version)` per ingested sighting.
    ///
    /// # Errors
    ///
    /// The first sighting error, prefixed with its index; sightings
    /// before it have been ingested (append-only, no rollback).
    pub fn observe_batch(
        &self,
        cells: usize,
        sightings: &[Sighting],
    ) -> Result<Vec<(String, u64)>, String> {
        let mut versions = Vec::with_capacity(sightings.len());
        for (i, s) in sightings.iter().enumerate() {
            let version = self
                .observe(&s.device, cells, s.time, s.cell)
                .map_err(|e| format!("sighting {i} ({:?}): {e}", s.device))?;
            versions.push((s.device.clone(), version));
        }
        Ok(versions)
    }

    /// The device's current version, if tracked.
    #[must_use]
    pub fn version(&self, device: &str) -> Option<u64> {
        let shard = self
            .shard_for(device)
            .lock()
            .expect("profile shard poisoned");
        shard.map.get(device).map(|e| e.profile.version())
    }

    /// The planner-ready distribution of one device at `now`, plus its
    /// version and staleness weight. `None` for untracked devices.
    #[must_use]
    pub fn distribution(
        &self,
        device: &str,
        estimator: Estimator,
        now: Time,
    ) -> Option<(Vec<f64>, u64, f64)> {
        let shard = self
            .shard_for(device)
            .lock()
            .expect("profile shard poisoned");
        let entry = shard.map.get(device)?;
        Some((
            entry
                .profile
                .distribution(estimator, now, &self.config.profile),
            entry.profile.version(),
            entry.profile.staleness_weight(now, &self.config.profile),
        ))
    }

    /// Builds a planner [`Instance`] from the named devices' profiles
    /// at `now` (default: the latest ingested time). Returns the
    /// instance, the per-device versions (same order as `devices`),
    /// and the per-device staleness weights.
    ///
    /// # Errors
    ///
    /// A message naming the first unknown device, on mixed cell
    /// counts, or when no devices are requested.
    pub fn instance_for(
        &self,
        devices: &[&str],
        estimator: Estimator,
        now: Option<Time>,
    ) -> Result<(Instance, Vec<u64>, Vec<f64>), String> {
        if devices.is_empty() {
            return Err("no devices named".to_string());
        }
        let now = now
            .or_else(|| self.latest_time())
            .ok_or_else(|| "store has no sightings and no \"now\" was given".to_string())?;
        let mut rows = Vec::with_capacity(devices.len());
        let mut versions = Vec::with_capacity(devices.len());
        let mut staleness = Vec::with_capacity(devices.len());
        let mut cells = None;
        for &device in devices {
            let (row, version, lambda) = self
                .distribution(device, estimator, now)
                .ok_or_else(|| format!("unknown device {device:?}"))?;
            match cells {
                None => cells = Some(row.len()),
                Some(c) if c != row.len() => {
                    return Err(format!(
                        "device {device:?} has {} cells, expected {c}",
                        row.len()
                    ));
                }
                Some(_) => {}
            }
            rows.push(row);
            versions.push(version);
            staleness.push(lambda);
        }
        let instance = Instance::from_rows(rows).map_err(|e| e.to_string())?;
        Ok((instance, versions, staleness))
    }

    /// Snapshot of the whole store as one JSON object (profiles plus
    /// counters), suitable for [`ProfileStore::from_json`].
    #[must_use]
    pub fn to_json(&self) -> Value {
        let mut profiles: Vec<(String, Value)> = Vec::new();
        for shard in &self.shards {
            let shard = shard.lock().expect("profile shard poisoned");
            for (device, entry) in &shard.map {
                profiles.push((device.clone(), entry.profile.to_json()));
            }
        }
        // Deterministic snapshots: shard iteration order is arbitrary.
        profiles.sort_by(|a, b| a.0.cmp(&b.0));
        Value::object(vec![
            ("format", Value::from("pager-profiles/v1")),
            ("version", Value::from(self.version.load(Ordering::Acquire))),
            (
                "sightings",
                // lint:allow(atomics-ordering-audit): monotone stats counter, no handoff
                Value::from(self.sightings.load(Ordering::Relaxed)),
            ),
            ("profiles", Value::Object(profiles)),
        ])
    }

    /// Rebuilds a store from [`ProfileStore::to_json`] output under a
    /// (possibly different) runtime configuration. Eviction counters
    /// restart at zero; the version counter resumes at least where it
    /// left off so versions stay monotone across restarts.
    ///
    /// # Errors
    ///
    /// A message on malformed payloads or invalid config.
    pub fn from_json(value: &Value, config: StoreConfig) -> Result<ProfileStore, String> {
        match value.get("format").and_then(Value::as_str) {
            Some("pager-profiles/v1") => {}
            other => return Err(format!("unknown snapshot format {other:?}")),
        }
        let store = ProfileStore::new(config)?;
        let mut max_version = crate::profile::read_u64_field(value, "snapshot", "version")?;
        let sightings = crate::profile::read_u64_field(value, "snapshot", "sightings")?;
        let profiles = value
            .get("profiles")
            .and_then(Value::as_object)
            .ok_or_else(|| "snapshot needs a \"profiles\" object".to_string())?;
        let mut latest = f64::NEG_INFINITY;
        for (device, payload) in profiles {
            let profile =
                DeviceProfile::from_json(payload).map_err(|e| format!("device {device:?}: {e}"))?;
            max_version = max_version.max(profile.version());
            if let Some((t, _)) = profile.last_sighting() {
                if t > latest {
                    latest = t;
                }
            }
            let mut shard = store
                .shard_for(device)
                .lock()
                .expect("profile shard poisoned");
            shard.tick += 1;
            let tick = shard.tick;
            shard.map.insert(
                device.clone(),
                StoredProfile {
                    profile,
                    last_used: tick,
                },
            );
        }
        store.version.store(max_version, Ordering::Release);
        // lint:allow(atomics-ordering-audit): store not yet shared during load
        store.sightings.store(sightings, Ordering::Relaxed);
        *store.latest_time.lock().expect("latest_time poisoned") = latest;
        Ok(store)
    }

    /// The on-disk snapshot image: one JSON line ending in `\n`. The
    /// trailing newline is the end-of-snapshot marker —
    /// [`ProfileStore::from_snapshot_bytes`] rejects an image without
    /// it, so a truncated file can never load as a smaller
    /// "valid"-looking store.
    #[must_use]
    pub fn snapshot_bytes(&self) -> Vec<u8> {
        format!("{}\n", self.to_json()).into_bytes()
    }

    /// Parses a snapshot image written by
    /// [`ProfileStore::snapshot_bytes`].
    ///
    /// # Errors
    ///
    /// A message on bad UTF-8, a missing end-of-snapshot marker
    /// (truncated file), or a malformed payload.
    pub fn from_snapshot_bytes(bytes: &[u8], config: StoreConfig) -> Result<ProfileStore, String> {
        let text = std::str::from_utf8(bytes).map_err(|e| format!("snapshot is not UTF-8: {e}"))?;
        let line = text
            .strip_suffix('\n')
            .ok_or_else(|| "snapshot is truncated: missing trailing newline marker".to_string())?;
        let value = jsonio::parse(line).map_err(|e| format!("snapshot does not parse: {e}"))?;
        ProfileStore::from_json(&value, config)
    }

    /// Merges a snapshot image written by another store into this one
    /// (the replication bootstrap path): every profile in the image
    /// replaces any local profile for the same device, and the
    /// version / sightings / latest-time counters are raised to at
    /// least the image's values (never lowered), so local versions
    /// stay monotone and — when this store holds nothing but replicas
    /// of the source — the merged state is byte-identical to the
    /// source snapshot.
    ///
    /// Returns the number of profiles merged.
    ///
    /// # Errors
    ///
    /// A message on a malformed image; nothing has been merged when
    /// the format or counters fail to parse, but a bad profile mid-way
    /// leaves the earlier profiles merged (the caller re-bootstraps).
    pub fn merge_snapshot_bytes(&self, bytes: &[u8]) -> Result<usize, String> {
        let text = std::str::from_utf8(bytes).map_err(|e| format!("snapshot is not UTF-8: {e}"))?;
        let line = text
            .strip_suffix('\n')
            .ok_or_else(|| "snapshot is truncated: missing trailing newline marker".to_string())?;
        let value = jsonio::parse(line).map_err(|e| format!("snapshot does not parse: {e}"))?;
        match value.get("format").and_then(Value::as_str) {
            Some("pager-profiles/v1") => {}
            other => return Err(format!("unknown snapshot format {other:?}")),
        }
        let source_version = crate::profile::read_u64_field(&value, "snapshot", "version")?;
        let source_sightings = crate::profile::read_u64_field(&value, "snapshot", "sightings")?;
        let profiles = value
            .get("profiles")
            .and_then(Value::as_object)
            .ok_or_else(|| "snapshot needs a \"profiles\" object".to_string())?;
        let mut merged = 0usize;
        let mut latest = f64::NEG_INFINITY;
        for (device, payload) in profiles {
            let profile =
                DeviceProfile::from_json(payload).map_err(|e| format!("device {device:?}: {e}"))?;
            if let Some((t, _)) = profile.last_sighting() {
                if t > latest {
                    latest = t;
                }
            }
            let mut shard = self
                .shard_for(device)
                .lock()
                .expect("profile shard poisoned");
            shard.tick += 1;
            let tick = shard.tick;
            shard.map.insert(
                device.clone(),
                StoredProfile {
                    profile,
                    last_used: tick,
                },
            );
            merged += 1;
        }
        // Raise, never lower: versions issued here must stay monotone
        // past anything either store has handed out.
        self.version.fetch_max(source_version, Ordering::AcqRel);
        self.sightings
            // lint:allow(atomics-ordering-audit): monotone stats counter, no handoff
            .fetch_max(source_sightings, Ordering::Relaxed);
        let mut current = self.latest_time.lock().expect("latest_time poisoned");
        if latest > *current {
            *current = latest;
        }
        Ok(merged)
    }

    /// Writes the snapshot to a file crash-atomically: temp file in
    /// the same directory, `sync_all`, atomic rename, directory sync.
    /// A crash at any point leaves either the old file or the new one,
    /// never a torn mixture.
    ///
    /// # Errors
    ///
    /// Propagates I/O errors.
    pub fn save(&self, path: &std::path::Path) -> std::io::Result<()> {
        crate::io::write_atomic(&crate::io::DiskIo, path, &self.snapshot_bytes())
    }

    /// Loads a snapshot written by [`ProfileStore::save`].
    ///
    /// # Errors
    ///
    /// A message on I/O failure, a truncated file, or a malformed
    /// payload.
    pub fn load(path: &std::path::Path, config: StoreConfig) -> Result<ProfileStore, String> {
        let bytes = std::fs::read(path).map_err(|e| format!("{}: {e}", path.display()))?;
        ProfileStore::from_snapshot_bytes(&bytes, config)
            .map_err(|e| format!("{}: {e}", path.display()))
    }
}

/// FNV-1a over the device ID — stable shard routing across runs.
fn fnv1a(text: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in text.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimators::total_variation;

    fn store() -> ProfileStore {
        ProfileStore::new(StoreConfig::default()).unwrap()
    }

    #[test]
    fn observe_creates_and_versions_increase() {
        let s = store();
        let v1 = s.observe("alice", 4, 0.0, 1).unwrap();
        let v2 = s.observe("bob", 4, 0.0, 2).unwrap();
        let v3 = s.observe("alice", 4, 1.0, 1).unwrap();
        assert!(v1 < v2 && v2 < v3, "{v1} {v2} {v3}");
        assert_eq!(s.version("alice"), Some(v3));
        assert_eq!(s.version("carol"), None);
        assert_eq!(s.len(), 2);
        assert_eq!(s.stats().sightings, 3);
        assert_eq!(s.latest_time(), Some(1.0));
    }

    #[test]
    fn observe_validates() {
        let s = store();
        assert!(s.observe("a", 0, 0.0, 0).is_err());
        assert!(s.observe("a", 4, 0.0, 9).is_err());
        s.observe("a", 4, 5.0, 0).unwrap();
        assert!(s.observe("a", 4, 4.0, 0).is_err(), "time regression");
        assert!(s.observe("a", 6, 6.0, 0).is_err(), "cell-count mismatch");
        // Failed sightings do not count.
        assert_eq!(s.stats().sightings, 1);
    }

    #[test]
    fn batch_reports_offender() {
        let s = store();
        let batch = vec![
            Sighting {
                device: "a".into(),
                cell: 0,
                time: 0.0,
            },
            Sighting {
                device: "b".into(),
                cell: 7,
                time: 0.0,
            },
        ];
        let err = s.observe_batch(4, &batch).unwrap_err();
        assert!(err.contains("sighting 1") && err.contains('b'), "{err}");
        // The first sighting landed.
        assert!(s.version("a").is_some());
        assert_eq!(s.version("b"), None);
    }

    #[test]
    fn instance_for_builds_planner_input() {
        let s = store();
        for t in 0..50 {
            s.observe("a", 3, f64::from(t), 0).unwrap();
            s.observe("b", 3, f64::from(t), (t as usize) % 3).unwrap();
        }
        let (inst, versions, staleness) = s
            .instance_for(&["a", "b"], Estimator::Empirical, None)
            .unwrap();
        assert_eq!(inst.num_devices(), 2);
        assert_eq!(inst.num_cells(), 3);
        assert!(inst.prob(0, 0) > 0.9);
        assert_eq!(versions.len(), 2);
        assert!(staleness.iter().all(|&l| l > 0.9));
        assert!(s
            .instance_for(&["a", "nobody"], Estimator::Empirical, None)
            .unwrap_err()
            .contains("nobody"));
        assert!(s.instance_for(&[], Estimator::Empirical, None).is_err());
    }

    #[test]
    fn eviction_is_lru_and_counted() {
        let s = ProfileStore::new(StoreConfig {
            capacity: 2,
            shards: 1,
            ..StoreConfig::default()
        })
        .unwrap();
        s.observe("a", 2, 0.0, 0).unwrap();
        s.observe("b", 2, 1.0, 0).unwrap();
        s.observe("a", 2, 2.0, 1).unwrap(); // refresh a: b is now LRU
        s.observe("c", 2, 3.0, 0).unwrap(); // evicts b
        assert_eq!(s.stats().evictions, 1);
        assert!(s.version("b").is_none());
        let va = s.version("a").unwrap();
        // Re-admitted b keeps drawing larger versions.
        let vb = s.observe("b", 2, 4.0, 0).unwrap();
        assert!(vb > va);
    }

    #[test]
    fn snapshot_round_trip() {
        let s = store();
        for t in 0..20 {
            s.observe("a", 4, f64::from(t), (t as usize) % 4).unwrap();
            s.observe("b", 4, f64::from(t), 0).unwrap();
        }
        let snap = s.to_json();
        let back = ProfileStore::from_json(&snap, StoreConfig::default()).unwrap();
        assert_eq!(back.len(), 2);
        assert_eq!(back.stats().sightings, 40);
        assert_eq!(back.latest_time(), Some(19.0));
        let (a, _, _) = s.distribution("a", Estimator::Markov, 20.0).unwrap();
        let (b, _, _) = back.distribution("a", Estimator::Markov, 20.0).unwrap();
        assert!(total_variation(&a, &b) < 1e-15);
        // Snapshots serialise deterministically.
        assert_eq!(snap.to_string(), back.to_json().to_string());
        // Versions resume past the snapshot: new sightings stay monotone.
        let v = back.observe("a", 4, 20.0, 0).unwrap();
        assert!(v > s.stats().version);
        assert!(ProfileStore::from_json(
            &jsonio::parse(r#"{"format":"bogus"}"#).unwrap(),
            StoreConfig::default()
        )
        .is_err());
    }

    #[test]
    fn save_and_load_files() {
        let dir = std::env::temp_dir().join("pager-profiles-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("snapshot.json");
        let s = store();
        s.observe("x", 3, 1.0, 2).unwrap();
        s.save(&path).unwrap();
        let back = ProfileStore::load(&path, StoreConfig::default()).unwrap();
        assert_eq!(back.version("x"), s.version("x"));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_snapshot_never_loads_as_empty_but_valid() {
        let s = store();
        s.observe("x", 3, 1.0, 2).unwrap();
        let image = s.snapshot_bytes();
        // Any strict prefix must be rejected — in particular the
        // prefix missing only the newline marker, whose JSON still
        // parses.
        let no_marker = &image[..image.len() - 1];
        assert!(jsonio::parse(std::str::from_utf8(no_marker).unwrap()).is_ok());
        let err = ProfileStore::from_snapshot_bytes(no_marker, StoreConfig::default())
            .map(|_| ())
            .unwrap_err();
        assert!(err.contains("truncated"), "{err}");
        for cut in 0..image.len() {
            assert!(
                ProfileStore::from_snapshot_bytes(&image[..cut], StoreConfig::default()).is_err(),
                "prefix of {cut} bytes loaded"
            );
        }
        // The full image loads.
        let back = ProfileStore::from_snapshot_bytes(&image, StoreConfig::default()).unwrap();
        assert_eq!(back.version("x"), s.version("x"));
    }

    #[test]
    fn malformed_numeric_fields_get_descriptive_errors() {
        let s = store();
        s.observe("x", 3, 1.0, 2).unwrap();
        let good = s.to_json().to_string();
        let cases = [
            // (field replacement, substring the error must carry)
            (r#""version":1"#, r#""version":-1"#, "non-negative integer"),
            (r#""version":1"#, r#""version":1.5"#, "non-negative integer"),
            (
                r#""version":1"#,
                r#""version":99999999999999999999"#,
                "non-negative integer",
            ),
            (
                r#""sightings":1"#,
                r#""sightings":-3"#,
                "non-negative integer",
            ),
            (
                r#""sightings":1"#,
                r#""sightings":"many""#,
                "non-negative integer",
            ),
        ];
        for (from, to, needle) in cases {
            let bad = good.replacen(from, to, 2);
            assert_ne!(bad, good, "replacement {to:?} did not apply");
            let err =
                ProfileStore::from_json(&jsonio::parse(&bad).unwrap(), StoreConfig::default())
                    .map(|_| ())
                    .unwrap_err();
            assert!(err.contains(needle), "{to}: error was {err:?}");
            assert!(err.contains("got"), "{to}: error hides the value: {err:?}");
        }
        // A malformed per-profile row names the device.
        let bad_row = good.replacen(r#""counts":[0.0,"#, r#""counts":[-7.0,"#, 1);
        assert_ne!(bad_row, good);
        let err =
            ProfileStore::from_json(&jsonio::parse(&bad_row).unwrap(), StoreConfig::default())
                .map(|_| ())
                .unwrap_err();
        assert!(err.contains("\"x\""), "{err}");
        assert!(err.contains("counts"), "{err}");
    }

    #[test]
    fn concurrent_ingest_is_safe_and_monotone() {
        let s = std::sync::Arc::new(store());
        let handles: Vec<_> = (0..8)
            .map(|t| {
                let s = std::sync::Arc::clone(&s);
                std::thread::spawn(move || {
                    let device = format!("dev{t}");
                    let mut last = 0u64;
                    for i in 0..500 {
                        let v = s
                            .observe(&device, 8, f64::from(i), (i as usize) % 8)
                            .unwrap();
                        assert!(v > last, "version regressed");
                        last = v;
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(s.stats().sightings, 4000);
        assert_eq!(s.stats().version, 4000);
        assert_eq!(s.len(), 8);
    }
}
