//! Replay harness: closes the sightings → profiles → plans →
//! simulation loop.
//!
//! The harness walks a ground-truth mobility trace, feeds sightings
//! into a [`ProfileStore`] on a configurable cadence, periodically
//! places a conference call by handing the store's planner-ready
//! [`Instance`] to a caller-supplied planner, and then *measures* the
//! plan against the truth with [`pager_core::simulation::run_search`].
//! Each call records the Lemma 2.1 expected paging of the served
//! strategy next to the realised paging cost, so the whole pipeline —
//! estimation quality included — is validated end to end, not just the
//! planner in isolation.
//!
//! The harness is deliberately generic: it knows nothing about how
//! the truth was generated (the root crate wires `cellnet` mobility
//! in) or how plans are produced (closures wrap `pager-service`, a
//! bare greedy call, or a blanket baseline equally well).

use pager_core::simulation::run_search;
use pager_core::{Instance, Strategy};

use crate::profile::{Estimator, Time};
use crate::store::ProfileStore;

/// One step of ground truth: where every device truly is at `time`.
#[derive(Debug, Clone, PartialEq)]
pub struct Step {
    /// The step's timestamp (non-decreasing across a trace).
    pub time: Time,
    /// True cell of each device, indexed by device.
    pub cells: Vec<usize>,
}

/// Replay cadence and estimation knobs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReplayConfig {
    /// Estimator the store should answer plans with.
    pub estimator: Estimator,
    /// Ingest sightings every this-many steps (1 = every step).
    pub observe_every: usize,
    /// Place a conference call every this-many steps.
    pub call_every: usize,
    /// Steps to ingest before the first call (profiles need history).
    pub warmup: usize,
}

impl Default for ReplayConfig {
    fn default() -> ReplayConfig {
        ReplayConfig {
            estimator: Estimator::Markov,
            observe_every: 1,
            call_every: 5,
            warmup: 20,
        }
    }
}

/// One conference call placed during a replay.
#[derive(Debug, Clone, PartialEq)]
pub struct CallRecord {
    /// Index of the truth step the call was placed at.
    pub step: usize,
    /// Its timestamp.
    pub time: Time,
    /// Lemma 2.1 expected paging of the served strategy under the
    /// profile-derived instance.
    pub expected_paging: f64,
    /// Cells actually paged against the ground-truth placements.
    pub realized_paging: usize,
    /// Rounds the search used.
    pub rounds_used: usize,
    /// Profile versions the plan was built from (one per device).
    pub versions: Vec<u64>,
}

/// Outcome of a full replay.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplayReport {
    /// Truth steps walked.
    pub steps: usize,
    /// Sightings ingested into the store.
    pub sightings_ingested: u64,
    /// Every call placed, in order.
    pub calls: Vec<CallRecord>,
}

impl ReplayReport {
    /// Mean Lemma 2.1 expected paging across calls.
    ///
    /// # Panics
    ///
    /// Panics if no calls were placed.
    #[must_use]
    pub fn mean_expected_paging(&self) -> f64 {
        assert!(!self.calls.is_empty(), "no calls were placed");
        #[allow(clippy::cast_precision_loss)]
        let n = self.calls.len() as f64;
        self.calls.iter().map(|c| c.expected_paging).sum::<f64>() / n
    }

    /// Mean realised paging cost across calls.
    ///
    /// # Panics
    ///
    /// Panics if no calls were placed.
    #[must_use]
    pub fn mean_realized_paging(&self) -> f64 {
        assert!(!self.calls.is_empty(), "no calls were placed");
        #[allow(clippy::cast_precision_loss)]
        let n = self.calls.len() as f64;
        self.calls
            .iter()
            .map(|c| c.realized_paging as f64)
            .sum::<f64>()
            / n
    }

    /// Realised over expected mean paging — near 1 when the profiles
    /// track the true mobility, above 1 when they have drifted.
    ///
    /// # Panics
    ///
    /// Panics if no calls were placed.
    #[must_use]
    pub fn realized_over_expected(&self) -> f64 {
        self.mean_realized_paging() / self.mean_expected_paging()
    }

    /// Renders the report as a JSON object (for the example binary).
    #[must_use]
    pub fn to_json(&self) -> jsonio::Value {
        jsonio::Value::object(vec![
            ("steps", jsonio::Value::from(self.steps)),
            (
                "sightings_ingested",
                jsonio::Value::from(self.sightings_ingested),
            ),
            ("calls", jsonio::Value::from(self.calls.len())),
            (
                "mean_expected_paging",
                jsonio::Value::Float(self.mean_expected_paging()),
            ),
            (
                "mean_realized_paging",
                jsonio::Value::Float(self.mean_realized_paging()),
            ),
            (
                "realized_over_expected",
                jsonio::Value::Float(self.realized_over_expected()),
            ),
        ])
    }
}

/// Walks `truth`, ingesting sightings into `store` and placing calls
/// through `plan`, and reports predicted versus realised paging.
///
/// Devices are named `dev0..devN-1` in the store, where `N` is the
/// width of the first truth step. On a step that is both an observe
/// and a call step, sightings are ingested *first* — the freshest
/// profile serves the call, which is the deployment ordering.
///
/// # Errors
///
/// A message on malformed truth (empty, ragged widths, out-of-range
/// cells, time regressions), a store or planner failure, or a trace
/// that yields no calls.
pub fn replay<F>(
    store: &ProfileStore,
    cells: usize,
    truth: &[Step],
    config: &ReplayConfig,
    mut plan: F,
) -> Result<ReplayReport, String>
where
    F: FnMut(&Instance) -> Result<Strategy, String>,
{
    if truth.is_empty() {
        return Err("truth trace is empty".to_string());
    }
    if config.observe_every == 0 || config.call_every == 0 {
        return Err("observe_every and call_every must be positive".to_string());
    }
    let devices = truth[0].cells.len();
    if devices == 0 {
        return Err("truth trace has no devices".to_string());
    }
    let names: Vec<String> = (0..devices).map(|i| format!("dev{i}")).collect();
    let name_refs: Vec<&str> = names.iter().map(String::as_str).collect();
    let mut ingested = 0u64;
    let mut calls = Vec::new();
    for (i, step) in truth.iter().enumerate() {
        if step.cells.len() != devices {
            return Err(format!(
                "step {i} has {} devices, expected {devices}",
                step.cells.len()
            ));
        }
        if i % config.observe_every == 0 {
            for (d, &cell) in step.cells.iter().enumerate() {
                store
                    .observe(&names[d], cells, step.time, cell)
                    .map_err(|e| format!("step {i}: {e}"))?;
                ingested += 1;
            }
        }
        if i >= config.warmup && i % config.call_every == 0 {
            let (instance, versions, _) = store
                .instance_for(&name_refs, config.estimator, Some(step.time))
                .map_err(|e| format!("step {i}: {e}"))?;
            let strategy = plan(&instance).map_err(|e| format!("step {i}: planner: {e}"))?;
            let expected = instance
                .expected_paging(&strategy)
                .map_err(|e| format!("step {i}: {e}"))?;
            let outcome = run_search(&strategy, &step.cells);
            calls.push(CallRecord {
                step: i,
                time: step.time,
                expected_paging: expected,
                realized_paging: outcome.cells_paged,
                rounds_used: outcome.rounds_used,
                versions,
            });
        }
    }
    if calls.is_empty() {
        return Err(format!(
            "no calls placed over {} steps (warmup {}, call_every {})",
            truth.len(),
            config.warmup,
            config.call_every
        ));
    }
    Ok(ReplayReport {
        steps: truth.len(),
        sightings_ingested: ingested,
        calls,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::StoreConfig;
    use pager_core::{greedy_strategy, Delay};

    fn cyclic_truth(steps: usize, devices: usize, cells: usize) -> Vec<Step> {
        (0..steps)
            .map(|i| Step {
                #[allow(clippy::cast_precision_loss)]
                time: i as f64,
                cells: (0..devices).map(|d| (i + d) % cells).collect(),
            })
            .collect()
    }

    #[test]
    fn blanket_replay_pages_everything() {
        let store = ProfileStore::new(StoreConfig::default()).unwrap();
        let truth = cyclic_truth(40, 2, 3);
        let cfg = ReplayConfig {
            warmup: 10,
            call_every: 5,
            ..ReplayConfig::default()
        };
        let report = replay(&store, 3, &truth, &cfg, |_| Ok(Strategy::blanket(3))).unwrap();
        assert_eq!(report.steps, 40);
        assert_eq!(report.sightings_ingested, 80);
        assert!(!report.calls.is_empty());
        // Blanket pages every cell: expected == realised == c exactly.
        assert!((report.mean_expected_paging() - 3.0).abs() < 1e-9);
        assert!((report.mean_realized_paging() - 3.0).abs() < 1e-9);
        assert!((report.realized_over_expected() - 1.0).abs() < 1e-9);
        let json = report.to_json().to_string();
        assert!(json.contains("realized_over_expected"), "{json}");
    }

    #[test]
    fn greedy_tracks_predictable_mobility() {
        // Deterministic cyclic walk: the Markov profile nails the next
        // cell, so greedy paging beats blanket and realised cost stays
        // close to the Lemma 2.1 prediction.
        let mut store_cfg = StoreConfig::default();
        // Light smoothing: the mobility is deterministic, so heavy
        // Laplace mass would make Lemma 2.1 needlessly conservative.
        store_cfg.profile.alpha = 0.1;
        let store = ProfileStore::new(store_cfg).unwrap();
        let truth = cyclic_truth(120, 2, 4);
        let cfg = ReplayConfig {
            estimator: Estimator::Markov,
            warmup: 40,
            call_every: 7,
            observe_every: 1,
        };
        let delay = Delay::new(2).unwrap();
        let report = replay(&store, 4, &truth, &cfg, |inst| {
            Ok(greedy_strategy(inst, delay))
        })
        .unwrap();
        assert!(report.mean_realized_paging() < 4.0, "beats blanket");
        // Smoothing keeps the prediction conservative (realised ≤
        // expected for deterministic motion), but not wildly so.
        let ratio = report.realized_over_expected();
        assert!((0.6..=1.2).contains(&ratio), "ratio {ratio}");
        // Versions are monotone across successive calls.
        for pair in report.calls.windows(2) {
            assert!(pair[1].versions[0] > pair[0].versions[0]);
        }
    }

    #[test]
    fn replay_validates_input() {
        let store = ProfileStore::new(StoreConfig::default()).unwrap();
        let cfg = ReplayConfig::default();
        let blanket = |_: &Instance| Ok(Strategy::blanket(3));
        assert!(replay(&store, 3, &[], &cfg, blanket).is_err());
        let ragged = vec![
            Step {
                time: 0.0,
                cells: vec![0, 1],
            },
            Step {
                time: 1.0,
                cells: vec![0],
            },
        ];
        assert!(replay(&store, 3, &ragged, &cfg, blanket)
            .unwrap_err()
            .contains("step 1"));
        // warmup beyond the trace: no calls.
        let truth = vec![
            Step {
                time: 0.0,
                cells: vec![0],
            };
            5
        ];
        let no_calls = ReplayConfig { warmup: 50, ..cfg };
        assert!(replay(&store, 3, &truth, &no_calls, blanket)
            .unwrap_err()
            .contains("no calls"));
        // Planner failures propagate.
        let fresh = ProfileStore::new(StoreConfig::default()).unwrap();
        let eager = ReplayConfig {
            warmup: 0,
            call_every: 1,
            ..cfg
        };
        assert!(
            replay(&fresh, 3, &truth, &eager, |_| { Err("nope".to_string()) })
                .unwrap_err()
                .contains("planner")
        );
    }
}
