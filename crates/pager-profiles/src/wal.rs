//! Append-only write-ahead log for sightings.
//!
//! Each record is framed as
//!
//! ```text
//! ┌────────────┬────────────┬─────────┬──────────────────┐
//! │ len: u32 LE│ crc: u32 LE│ ver: u8 │ payload (len-1 B)│
//! └────────────┴────────────┴─────────┴──────────────────┘
//! ```
//!
//! `len` counts the version byte plus the payload; `crc` is CRC-32
//! (IEEE) over those same bytes. Version 1 payloads encode one
//! sighting:
//!
//! ```text
//! cells: u32 LE | cell: u32 LE | time: f64 bits LE | dev_len: u32 LE | device: utf-8
//! ```
//!
//! Recovery scans from the start and stops at the first frame that is
//! short, oversized, or fails its checksum — everything before that
//! point is replayed, everything after is truncated. The scanner never
//! resyncs past a bad frame: a mid-log corruption conservatively
//! discards the suffix, which preserves the invariant that the
//! recovered log is always a *prefix* of what was appended (the
//! property the proptests pin down).

/// One durable sighting: [`crate::store::Sighting`] plus the cell
/// count it was observed against (a separate argument on the ingest
/// path, so the WAL carries it explicitly).
#[derive(Debug, Clone, PartialEq)]
pub struct SightingRecord {
    /// Opaque device identifier.
    pub device: String,
    /// Number of cells in the device's network at observation time.
    pub cells: usize,
    /// When it was seen.
    pub time: f64,
    /// The cell it was seen in.
    pub cell: usize,
}

/// Frame header size: `len` + `crc`.
pub const HEADER_BYTES: usize = 8;

/// Current record version.
pub const RECORD_VERSION: u8 = 1;

/// Upper bound on `len` — a corrupt length field must not cause a
/// gigabyte allocation. Generous next to a real sighting (device name
/// plus ~17 bytes).
pub const MAX_RECORD_BYTES: u32 = 1 << 20;

/// Upper bound on a device identifier, in bytes. Enforced at encode
/// time (and again by the scanner) so every encodable record frames
/// well under [`MAX_RECORD_BYTES`]: a record the ingest path acks is
/// always one the recovery scan will accept, never a poison frame that
/// truncates the log and the acked records behind it.
pub const MAX_DEVICE_BYTES: usize = 4096;

/// CRC-32 (IEEE 802.3, reflected, polynomial 0xEDB88320).
#[must_use]
pub fn crc32(data: &[u8]) -> u32 {
    // Nibble-driven table: 16 entries is enough to stay fast without
    // a build-time table generator.
    const TABLE: [u32; 16] = [
        0x0000_0000,
        0x1DB7_1064,
        0x3B6E_20C8,
        0x26D9_30AC,
        0x76DC_4190,
        0x6B6B_51F4,
        0x4DB2_6158,
        0x5005_713C,
        0xEDB8_8320,
        0xF00F_9344,
        0xD6D6_A3E8,
        0xCB61_B38C,
        0x9B64_C2B0,
        0x86D3_D2D4,
        0xA00A_E278,
        0xBDBD_F21C,
    ];
    let mut crc = !0u32;
    for &byte in data {
        crc = (crc >> 4) ^ TABLE[((crc ^ u32::from(byte)) & 0xF) as usize];
        crc = (crc >> 4) ^ TABLE[((crc ^ (u32::from(byte) >> 4)) & 0xF) as usize];
    }
    !crc
}

/// Encodes one sighting as a framed v1 record.
///
/// # Errors
///
/// A message when the sighting cannot be represented losslessly: a
/// device name over [`MAX_DEVICE_BYTES`], or a `cells`/`cell` value
/// that does not fit the wire's `u32`. Rejecting here (rather than
/// saturating) keeps the round-trip exact and keeps every encoded
/// frame within [`MAX_RECORD_BYTES`], which the recovery scanner
/// relies on.
pub fn encode_record(sighting: &SightingRecord) -> Result<Vec<u8>, String> {
    let device = sighting.device.as_bytes();
    if device.len() > MAX_DEVICE_BYTES {
        return Err(format!(
            "device name is {} bytes, over the {MAX_DEVICE_BYTES}-byte limit",
            device.len()
        ));
    }
    let cells = u32::try_from(sighting.cells)
        .map_err(|_| format!("cell count {} does not fit u32", sighting.cells))?;
    let cell = u32::try_from(sighting.cell)
        .map_err(|_| format!("cell index {} does not fit u32", sighting.cell))?;
    // Bounded by MAX_DEVICE_BYTES above, so the frame length always
    // fits u32 and stays far below MAX_RECORD_BYTES.
    let dev_len = u32::try_from(device.len())
        .map_err(|_| format!("device length {} does not fit u32", device.len()))?;
    let mut body = Vec::with_capacity(1 + 16 + 4 + device.len());
    body.push(RECORD_VERSION);
    body.extend_from_slice(&cells.to_le_bytes());
    body.extend_from_slice(&cell.to_le_bytes());
    body.extend_from_slice(&sighting.time.to_bits().to_le_bytes());
    body.extend_from_slice(&dev_len.to_le_bytes());
    body.extend_from_slice(device);
    let len = u32::try_from(body.len())
        .map_err(|_| format!("record body {} bytes does not fit u32", body.len()))?;
    let mut frame = Vec::with_capacity(HEADER_BYTES + body.len());
    frame.extend_from_slice(&len.to_le_bytes());
    frame.extend_from_slice(&crc32(&body).to_le_bytes());
    frame.extend_from_slice(&body);
    Ok(frame)
}

fn read_u32(bytes: &[u8], at: usize) -> Option<u32> {
    let end = at.checked_add(4)?;
    let chunk: [u8; 4] = bytes.get(at..end)?.try_into().ok()?;
    Some(u32::from_le_bytes(chunk))
}

/// Decodes a checksum-verified v1 payload (the bytes after the
/// version byte). `None` means the payload is structurally invalid —
/// possible only if a corrupted record also collided the CRC, so the
/// scanner treats it like a bad checksum.
fn decode_v1(payload: &[u8]) -> Option<SightingRecord> {
    let cells = read_u32(payload, 0)? as usize;
    let cell = read_u32(payload, 4)? as usize;
    let time_bits: [u8; 8] = payload.get(8..16)?.try_into().ok()?;
    let time = f64::from_bits(u64::from_le_bytes(time_bits));
    let dev_len = read_u32(payload, 16)? as usize;
    if dev_len > MAX_DEVICE_BYTES {
        // Symmetric with encode: a frame no encoder could have
        // produced is corruption, not data.
        return None;
    }
    let device_bytes = payload.get(20..)?;
    if device_bytes.len() != dev_len {
        return None;
    }
    let device = std::str::from_utf8(device_bytes).ok()?.to_string();
    Some(SightingRecord {
        device,
        cells,
        time,
        cell,
    })
}

/// Outcome of scanning a WAL image.
#[derive(Debug)]
pub struct WalScan {
    /// Decoded records, in append order.
    pub records: Vec<SightingRecord>,
    /// End offset of each valid frame: `frame_ends[i]` is the log
    /// length that covers exactly `records[..=i]` (so replay can
    /// truncate after any record without re-encoding it).
    pub frame_ends: Vec<u64>,
    /// Byte length of the valid prefix; everything past it should be
    /// truncated.
    pub valid_len: u64,
    /// Bytes past the valid prefix (torn tail, corruption).
    pub truncated_bytes: u64,
}

/// Scans a WAL image, stopping at the first bad frame. Never panics,
/// whatever the input: corrupt lengths are bounds-checked before any
/// allocation and unknown record versions stop the scan like a torn
/// tail (a v2 log must not half-load under v1 code).
#[must_use]
pub fn scan(bytes: &[u8]) -> WalScan {
    let mut records = Vec::new();
    let mut frame_ends = Vec::new();
    let mut at = 0usize;
    while let Some(len) = read_u32(bytes, at) {
        let Some(expected_crc) = read_u32(bytes, at + 4) else {
            break;
        };
        if len == 0 || len > MAX_RECORD_BYTES {
            break;
        }
        let body_start = at + HEADER_BYTES;
        let Some(body_end) = body_start.checked_add(len as usize) else {
            break;
        };
        let Some(body) = bytes.get(body_start..body_end) else {
            break;
        };
        if crc32(body) != expected_crc {
            break;
        }
        let (&version, payload) = match body.split_first() {
            Some(split) => split,
            None => break,
        };
        if version != RECORD_VERSION {
            break;
        }
        let Some(sighting) = decode_v1(payload) else {
            break;
        };
        records.push(sighting);
        at = body_end;
        frame_ends.push(at as u64);
    }
    WalScan {
        records,
        frame_ends,
        valid_len: at as u64,
        truncated_bytes: (bytes.len() - at) as u64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sighting(device: &str, cells: usize, time: f64, cell: usize) -> SightingRecord {
        SightingRecord {
            device: device.to_string(),
            cells,
            time,
            cell,
        }
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE check values.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn encode_scan_round_trip() {
        let records = vec![
            sighting("alice", 8, 1.5, 3),
            sighting("bob", 8, 2.0, 0),
            sighting("", 1, 0.0, 0),
            sighting("π-device", 16, 1e9, 15),
        ];
        let mut log = Vec::new();
        for record in &records {
            log.extend_from_slice(&encode_record(record).unwrap());
        }
        let scan = scan(&log);
        assert_eq!(scan.valid_len, log.len() as u64);
        assert_eq!(scan.truncated_bytes, 0);
        assert_eq!(scan.records.len(), records.len());
        for (got, want) in scan.records.iter().zip(&records) {
            assert_eq!(got.device, want.device);
            assert_eq!(got.cells, want.cells);
            assert_eq!(got.cell, want.cell);
            assert!((got.time - want.time).abs() < 1e-12);
        }
    }

    #[test]
    fn truncated_tail_is_dropped_cleanly() {
        let full = encode_record(&sighting("alice", 4, 1.0, 2)).unwrap();
        let mut log = full.clone();
        log.extend_from_slice(&encode_record(&sighting("bob", 4, 2.0, 3)).unwrap());
        // Cut anywhere inside the second record.
        for cut in full.len()..log.len() {
            let scan = scan(&log[..cut]);
            assert_eq!(scan.records.len(), 1, "cut at {cut}");
            assert_eq!(scan.valid_len, full.len() as u64);
            assert_eq!(scan.truncated_bytes, (cut - full.len()) as u64);
        }
    }

    #[test]
    fn bad_checksum_stops_the_scan() {
        let mut log = encode_record(&sighting("alice", 4, 1.0, 2)).unwrap();
        let tail = encode_record(&sighting("bob", 4, 2.0, 3)).unwrap();
        let flip_at = log.len() + HEADER_BYTES + 3; // inside bob's body
        log.extend_from_slice(&tail);
        log[flip_at] ^= 0x01;
        let scan = scan(&log);
        assert_eq!(scan.records.len(), 1);
        assert_eq!(scan.truncated_bytes, tail.len() as u64);
    }

    #[test]
    fn corrupt_length_does_not_allocate_or_panic() {
        let mut log = Vec::new();
        log.extend_from_slice(&u32::MAX.to_le_bytes()); // absurd len
        log.extend_from_slice(&0u32.to_le_bytes());
        log.extend_from_slice(&[0u8; 64]);
        let scan = scan(&log);
        assert!(scan.records.is_empty());
        assert_eq!(scan.valid_len, 0);
    }

    #[test]
    fn unknown_version_stops_the_scan() {
        let mut frame = encode_record(&sighting("alice", 4, 1.0, 2)).unwrap();
        // Bump the version byte and re-checksum so only the version is
        // "wrong".
        frame[HEADER_BYTES] = RECORD_VERSION + 1;
        let crc = crc32(&frame[HEADER_BYTES..]).to_le_bytes();
        frame[4..8].copy_from_slice(&crc);
        let scan = scan(&frame);
        assert!(scan.records.is_empty());
        assert_eq!(scan.truncated_bytes, frame.len() as u64);
    }

    #[test]
    fn oversize_or_unrepresentable_records_are_rejected_at_encode() {
        let long_device = "x".repeat(MAX_DEVICE_BYTES + 1);
        let err = encode_record(&sighting(&long_device, 4, 1.0, 2)).unwrap_err();
        assert!(err.contains("byte limit"), "{err}");
        // Exactly at the limit still encodes and round-trips.
        let at_limit = "y".repeat(MAX_DEVICE_BYTES);
        let frame = encode_record(&sighting(&at_limit, 4, 1.0, 2)).unwrap();
        assert!(frame.len() as u32 <= MAX_RECORD_BYTES);
        let scanned = scan(&frame);
        assert_eq!(scanned.records.len(), 1);
        assert_eq!(scanned.records[0].device, at_limit);
        // cells/cell over u32 are rejected, not silently saturated.
        #[cfg(target_pointer_width = "64")]
        {
            let too_many_cells = u64::from(u32::MAX) as usize + 1;
            assert!(encode_record(&sighting("a", too_many_cells, 1.0, 0)).is_err());
            assert!(encode_record(&sighting("a", 4, 1.0, too_many_cells)).is_err());
        }
    }

    #[test]
    fn scan_reports_a_frame_end_per_record() {
        let a = encode_record(&sighting("alice", 4, 1.0, 2)).unwrap();
        let b = encode_record(&sighting("bob", 4, 2.0, 3)).unwrap();
        let mut log = a.clone();
        log.extend_from_slice(&b);
        let scanned = scan(&log);
        assert_eq!(
            scanned.frame_ends,
            vec![a.len() as u64, (a.len() + b.len()) as u64]
        );
    }

    #[test]
    fn empty_and_garbage_inputs_never_panic() {
        assert!(scan(&[]).records.is_empty());
        assert!(scan(&[0x00]).records.is_empty());
        let garbage: Vec<u8> = (0..255u8).cycle().take(4096).collect();
        let result = scan(&garbage);
        // Whatever it decodes, the prefix property holds.
        assert!(result.valid_len + result.truncated_bytes == 4096);
    }
}
