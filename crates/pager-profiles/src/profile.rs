//! One device's location profile.
//!
//! A profile ingests sightings append-only and can produce a
//! planner-ready distribution at any moment under three estimators
//! (Laplace empirical, exponential recency, first-order Markov), all
//! subject to a staleness decay toward uniform: the longer a device
//! has gone unsighted, the less the profile claims to know.

use jsonio::Value;

use crate::estimators;
use crate::markov::MarkovModel;

/// Time is the same `f64` clock `cellnet` traces use.
pub type Time = f64;

/// Which estimator turns a profile into a distribution.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Estimator {
    /// Laplace-smoothed empirical frequencies over the whole history.
    Empirical,
    /// Exponential-recency-weighted frequencies.
    Recency,
    /// First-order Markov prediction from the last sighting and the
    /// elapsed time.
    Markov,
}

impl Estimator {
    /// Stable name for keys, metrics, and the wire protocol.
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Estimator::Empirical => "empirical",
            Estimator::Recency => "recency",
            Estimator::Markov => "markov",
        }
    }

    /// Parses a wire name.
    ///
    /// # Errors
    ///
    /// A message listing the valid names.
    pub fn parse(name: &str) -> Result<Estimator, String> {
        match name {
            "empirical" => Ok(Estimator::Empirical),
            "recency" => Ok(Estimator::Recency),
            "markov" => Ok(Estimator::Markov),
            other => Err(format!(
                "unknown estimator {other:?} (expected \"empirical\", \"recency\" or \"markov\")"
            )),
        }
    }

    /// Stable small integer for cache-key folding.
    #[must_use]
    pub fn tag(self) -> u64 {
        match self {
            Estimator::Empirical => 0,
            Estimator::Recency => 1,
            Estimator::Markov => 2,
        }
    }
}

/// Estimation knobs shared by every profile in a store.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProfileConfig {
    /// Laplace smoothing mass per cell (also the Markov row smoothing).
    pub alpha: f64,
    /// Recency decay per sighting, in `(0, 1]`.
    pub decay: f64,
    /// Staleness half-life: after this long unsighted, a profile's
    /// distribution has moved halfway to uniform. `f64::INFINITY`
    /// disables staleness decay.
    pub staleness_half_life: f64,
    /// Cap on Markov prediction steps (the chain has converged long
    /// before this for any realistic mobility).
    pub markov_horizon: usize,
}

impl Default for ProfileConfig {
    fn default() -> ProfileConfig {
        ProfileConfig {
            alpha: 0.5,
            decay: 0.95,
            staleness_half_life: 256.0,
            markov_horizon: 32,
        }
    }
}

impl ProfileConfig {
    /// Validates the knobs (constructors of stores call this once).
    ///
    /// # Errors
    ///
    /// A message naming the offending knob.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.alpha > 0.0 && self.alpha.is_finite()) {
            return Err("alpha must be positive and finite".to_string());
        }
        if !(self.decay > 0.0 && self.decay <= 1.0) {
            return Err("decay must be in (0, 1]".to_string());
        }
        if self.staleness_half_life <= 0.0 || self.staleness_half_life.is_nan() {
            return Err("staleness_half_life must be positive".to_string());
        }
        Ok(())
    }

    /// The staleness blend weight `λ = 2^(−elapsed / half_life)` for a
    /// device unsighted for `elapsed` time units. `λ = 1` means fully
    /// trusted; `λ → 0` means forgotten. Monotone non-increasing in
    /// `elapsed`.
    #[must_use]
    pub fn staleness_weight(&self, elapsed: f64) -> f64 {
        if elapsed <= 0.0 || self.staleness_half_life.is_infinite() {
            return 1.0;
        }
        (-(elapsed / self.staleness_half_life) * std::f64::consts::LN_2).exp()
    }
}

/// One device's versioned location profile.
#[derive(Debug, Clone, PartialEq)]
pub struct DeviceProfile {
    cells: usize,
    version: u64,
    sightings: u64,
    /// Empirical per-cell counts.
    counts: Vec<f64>,
    /// Recency weights: scaled by `decay` on every sighting, so cell
    /// weight equals `Σ decay^age` without replaying the history.
    recency: Vec<f64>,
    markov: MarkovModel,
    last: Option<(Time, usize)>,
}

impl DeviceProfile {
    /// An empty profile over `cells` cells (version 0, answers
    /// uniform until the first sighting).
    ///
    /// # Panics
    ///
    /// Panics if `cells == 0`.
    #[must_use]
    pub fn new(cells: usize) -> DeviceProfile {
        assert!(cells > 0, "need at least one cell");
        DeviceProfile {
            cells,
            version: 0,
            sightings: 0,
            counts: vec![0.0; cells],
            recency: vec![0.0; cells],
            markov: MarkovModel::new(cells),
            last: None,
        }
    }

    /// Number of cells this profile is defined over.
    #[must_use]
    pub fn num_cells(&self) -> usize {
        self.cells
    }

    /// Monotonically increasing profile version (bumped per sighting).
    #[must_use]
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Total sightings ingested.
    #[must_use]
    pub fn num_sightings(&self) -> u64 {
        self.sightings
    }

    /// The most recent sighting, if any.
    #[must_use]
    pub fn last_sighting(&self) -> Option<(Time, usize)> {
        self.last
    }

    /// Ingests one sighting, bumping the version to `version`.
    ///
    /// Sightings must arrive in non-decreasing time order per device
    /// and with a version larger than the current one (the store hands
    /// out globally increasing versions so re-admitted devices never
    /// reuse one).
    ///
    /// # Errors
    ///
    /// A message on an out-of-range cell, a time regression, or a
    /// non-increasing version.
    pub fn observe(
        &mut self,
        time: Time,
        cell: usize,
        version: u64,
        config: &ProfileConfig,
    ) -> Result<(), String> {
        if cell >= self.cells {
            return Err(format!(
                "cell {cell} out of range for a {}-cell profile",
                self.cells
            ));
        }
        if !time.is_finite() {
            return Err("sighting time must be finite".to_string());
        }
        if version <= self.version {
            return Err(format!(
                "version must increase (have {}, got {version})",
                self.version
            ));
        }
        if let Some((last_time, last_cell)) = self.last {
            if time < last_time {
                return Err(format!("sighting at {time} regresses before {last_time}"));
            }
            self.markov.observe(last_cell, cell);
        }
        self.counts[cell] += 1.0;
        for w in &mut self.recency {
            *w *= config.decay;
        }
        self.recency[cell] += 1.0;
        self.sightings += 1;
        self.last = Some((time, cell));
        self.version = version;
        Ok(())
    }

    /// The staleness blend weight of this profile at `now`.
    #[must_use]
    pub fn staleness_weight(&self, now: Time, config: &ProfileConfig) -> f64 {
        match self.last {
            None => 0.0, // never sighted: fully uniform
            Some((time, _)) => config.staleness_weight(now - time),
        }
    }

    /// The planner-ready distribution at `now`: the chosen estimator's
    /// output blended toward uniform by the staleness weight. Every
    /// entry is strictly positive and the row sums to 1 within 1e-12
    /// (the paper's model requirement) for any ingest history.
    #[must_use]
    pub fn distribution(
        &self,
        estimator: Estimator,
        now: Time,
        config: &ProfileConfig,
    ) -> Vec<f64> {
        let base = match (estimator, self.last) {
            (_, None) => estimators::uniform(self.cells),
            (Estimator::Empirical, _) => {
                estimators::empirical_from_counts(&self.counts, config.alpha)
            }
            (Estimator::Recency, _) => {
                estimators::empirical_from_counts(&self.recency, config.alpha)
            }
            (Estimator::Markov, Some((time, cell))) => {
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                let steps = (now - time).max(0.0).round().min(1e9) as usize;
                self.markov
                    .predict(cell, steps.min(config.markov_horizon), config.alpha)
            }
        };
        estimators::blend_toward_uniform(&base, self.staleness_weight(now, config))
    }

    /// Snapshot as a JSON object.
    #[must_use]
    pub fn to_json(&self) -> Value {
        let (last_time, last_cell) = match self.last {
            Some((t, c)) => (Value::Float(t), Value::from(c)),
            None => (Value::Null, Value::Null),
        };
        Value::object(vec![
            ("cells", Value::from(self.cells)),
            ("version", Value::from(self.version)),
            ("sightings", Value::from(self.sightings)),
            (
                "counts",
                Value::Array(self.counts.iter().map(|&n| Value::Float(n)).collect()),
            ),
            (
                "recency",
                Value::Array(self.recency.iter().map(|&w| Value::Float(w)).collect()),
            ),
            ("markov", self.markov.to_json()),
            ("last_time", last_time),
            ("last_cell", last_cell),
        ])
    }

    /// Rebuilds a profile from [`DeviceProfile::to_json`] output.
    ///
    /// # Errors
    ///
    /// A message on malformed or inconsistent payloads.
    pub fn from_json(value: &Value) -> Result<DeviceProfile, String> {
        let cells = value
            .get("cells")
            .and_then(Value::as_usize)
            .filter(|&c| c > 0)
            .ok_or_else(|| "profile needs a positive \"cells\"".to_string())?;
        let version = read_u64_field(value, "profile", "version")?;
        let sightings = read_u64_field(value, "profile", "sightings")?;
        let counts = read_f64s(value, "counts", cells)?;
        let recency = read_f64s(value, "recency", cells)?;
        let markov = MarkovModel::from_json(
            value
                .get("markov")
                .ok_or_else(|| "profile needs \"markov\"".to_string())?,
        )?;
        if markov.num_cells() != cells {
            return Err("markov shape disagrees with \"cells\"".to_string());
        }
        let last = match (value.get("last_time"), value.get("last_cell")) {
            (Some(Value::Null), _) | (None, _) => None,
            (Some(t), Some(c)) => {
                let t = t
                    .as_f64()
                    .ok_or_else(|| "\"last_time\" must be a number".to_string())?;
                let c = c
                    .as_usize()
                    .filter(|&c| c < cells)
                    .ok_or_else(|| "\"last_cell\" must be an in-range cell".to_string())?;
                Some((t, c))
            }
            _ => return Err("\"last_time\" without \"last_cell\"".to_string()),
        };
        Ok(DeviceProfile {
            cells,
            version,
            sightings,
            counts,
            recency,
            markov,
            last,
        })
    }
}

/// Reads a required counter field, distinguishing a missing key from a
/// malformed value: negative, fractional, and `u64`-overflowing
/// numbers (jsonio degrades the latter to floats) all fail `as_u64`
/// and get an error naming the offending value instead of a generic
/// "needs field".
pub(crate) fn read_u64_field(value: &Value, what: &str, key: &str) -> Result<u64, String> {
    let field = value
        .get(key)
        .ok_or_else(|| format!("{what} needs {key:?}"))?;
    field
        .as_u64()
        .ok_or_else(|| format!("{what} {key:?} must be a non-negative integer, got {field}"))
}

fn read_f64s(value: &Value, key: &str, expected: usize) -> Result<Vec<f64>, String> {
    let arr = value
        .get(key)
        .and_then(Value::as_array)
        .ok_or_else(|| format!("profile needs an array {key:?}"))?;
    if arr.len() != expected {
        return Err(format!(
            "{key:?} has {} entries, expected {expected}",
            arr.len()
        ));
    }
    arr.iter()
        .enumerate()
        .map(|(i, v)| {
            v.as_f64()
                .filter(|x| x.is_finite() && *x >= 0.0)
                .ok_or_else(|| format!("{key:?}[{i}] must be a non-negative number"))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::estimators::{total_variation, uniform};

    fn cfg() -> ProfileConfig {
        ProfileConfig::default()
    }

    fn row_ok(p: &[f64]) {
        let sum: f64 = p.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12, "sum {sum}");
        assert!(p.iter().all(|&x| x > 0.0), "{p:?}");
    }

    #[test]
    fn fresh_profile_is_uniform() {
        let p = DeviceProfile::new(4);
        assert_eq!(p.version(), 0);
        for est in [Estimator::Empirical, Estimator::Recency, Estimator::Markov] {
            let d = p.distribution(est, 10.0, &cfg());
            assert!(total_variation(&d, &uniform(4)) < 1e-15);
        }
    }

    #[test]
    fn observe_bumps_version_and_concentrates() {
        let mut p = DeviceProfile::new(4);
        for (v, t) in (1..=6u64).zip([0.0, 1.0, 2.0, 3.0, 4.0, 5.0]) {
            p.observe(t, 2, v, &cfg()).unwrap();
        }
        assert_eq!(p.version(), 6);
        assert_eq!(p.num_sightings(), 6);
        assert_eq!(p.last_sighting(), Some((5.0, 2)));
        for est in [Estimator::Empirical, Estimator::Recency, Estimator::Markov] {
            let d = p.distribution(est, 5.0, &cfg());
            row_ok(&d);
            let best = d
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.total_cmp(b.1))
                .unwrap()
                .0;
            assert_eq!(best, 2, "{est:?}: {d:?}");
        }
    }

    #[test]
    fn observe_rejects_bad_input() {
        let mut p = DeviceProfile::new(3);
        assert!(p.observe(0.0, 7, 1, &cfg()).is_err());
        assert!(p.observe(f64::NAN, 0, 1, &cfg()).is_err());
        p.observe(5.0, 0, 3, &cfg()).unwrap();
        assert!(p.observe(4.0, 1, 4, &cfg()).is_err(), "time regression");
        assert!(p.observe(6.0, 1, 3, &cfg()).is_err(), "version reuse");
        assert_eq!(p.version(), 3);
    }

    #[test]
    fn staleness_pulls_toward_uniform() {
        let mut p = DeviceProfile::new(3);
        p.observe(0.0, 0, 1, &cfg()).unwrap();
        let soon = p.distribution(Estimator::Empirical, 1.0, &cfg());
        let late = p.distribution(Estimator::Empirical, 10_000.0, &cfg());
        let u = uniform(3);
        assert!(total_variation(&late, &u) < total_variation(&soon, &u));
        assert!(total_variation(&late, &u) < 1e-6, "{late:?}");
    }

    #[test]
    fn markov_uses_elapsed_time() {
        let mut p = DeviceProfile::new(2);
        let mut v = 0;
        // Strict alternation 0,1,0,1,... at unit intervals.
        for t in 0..40 {
            v += 1;
            p.observe(f64::from(t), (t as usize) % 2, v, &cfg())
                .unwrap();
        }
        // Last sighting: cell 1 at t=39. One step later the chain
        // says cell 0; two steps later cell 1 again.
        let one = p.distribution(Estimator::Markov, 40.0, &cfg());
        let two = p.distribution(Estimator::Markov, 41.0, &cfg());
        assert!(one[0] > 0.8, "{one:?}");
        assert!(two[1] > 0.75, "{two:?}");
        row_ok(&one);
        row_ok(&two);
    }

    #[test]
    fn json_round_trip() {
        let mut p = DeviceProfile::new(5);
        let mut v = 0;
        for (t, cell) in [(0.0, 1), (1.5, 2), (3.0, 2), (7.0, 4)] {
            v += 1;
            p.observe(t, cell, v, &cfg()).unwrap();
        }
        let text = p.to_json().to_string();
        let back = DeviceProfile::from_json(&jsonio::parse(&text).unwrap()).unwrap();
        assert_eq!(back, p);
        // Distributions agree exactly after the round trip.
        let a = p.distribution(Estimator::Markov, 9.0, &cfg());
        let b = back.distribution(Estimator::Markov, 9.0, &cfg());
        assert!(total_variation(&a, &b) < 1e-15);
    }

    #[test]
    fn config_validation() {
        assert!(ProfileConfig::default().validate().is_ok());
        let bad = ProfileConfig {
            alpha: 0.0,
            ..ProfileConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = ProfileConfig {
            decay: 1.5,
            ..ProfileConfig::default()
        };
        assert!(bad.validate().is_err());
        let bad = ProfileConfig {
            staleness_half_life: 0.0,
            ..ProfileConfig::default()
        };
        assert!(bad.validate().is_err());
    }

    #[test]
    fn staleness_weight_shape() {
        let c = cfg();
        assert_eq!(c.staleness_weight(0.0), 1.0);
        let half = c.staleness_weight(c.staleness_half_life);
        assert!((half - 0.5).abs() < 1e-12);
        assert!(c.staleness_weight(10.0) > c.staleness_weight(20.0));
        let forever = ProfileConfig {
            staleness_half_life: f64::INFINITY,
            ..c
        };
        assert_eq!(forever.staleness_weight(1e12), 1.0);
    }
}
