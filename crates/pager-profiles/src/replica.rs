//! Follower-side WAL-shipping apply: exactly-once, cursor-durable.
//!
//! A follower receives a leader's state two ways: a **snapshot
//! bootstrap** ([`ReplicaApplier::install_snapshot`], a
//! [`crate::SnapshotExport`] image merged into the local store) and
//! **WAL chunks** ([`ReplicaApplier::apply_chunk`], frames fetched
//! from the leader's log starting exactly at the follower's cursor).
//! Applied records go through the follower's own [`DurableStore`] —
//! re-logged and fsynced like client-acked writes — and the cursor
//! `(generation, offset)` is persisted (atomically, per source) only
//! *after* the records are durable.
//!
//! # Exactly-once across crashes
//!
//! The profile store burns a version number even for records it ends
//! up applying, so replaying a shipped record twice would skew the
//! follower's version sequence away from the leader's and break
//! byte-identical convergence. The cursor file therefore records the
//! follower's store version at the moment it was written; on reopen,
//! a cursor whose recorded version differs from the recovered store's
//! is *ambiguous* (the crash landed between the durable apply and the
//! cursor write, or durable records were torn away) and is reported
//! invalid — the shipping pump then re-bootstraps from a fresh leader
//! snapshot, which is always safe because
//! [`crate::ProfileStore::merge_snapshot_bytes`] only fast-forwards.
//!
//! The same rule makes generation hand-off safe: when the leader
//! checkpoints, its old WAL is deleted, `export_wal` answers
//! `Bootstrap`, and the pump falls back to a snapshot install that
//! resets the cursor to the new generation.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::{Arc, Mutex, PoisonError};

use jsonio::Value;

use crate::durable::{DurableError, DurableStore};
use crate::io::{write_atomic, StorageIo};
use crate::wal::scan;

/// What the follower knows about one source's replication progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CursorStatus {
    /// Source WAL generation the cursor points into.
    pub generation: u64,
    /// Byte offset within that generation's WAL.
    pub offset: u64,
    /// Whether the cursor can be trusted; `false` demands a snapshot
    /// bootstrap before any chunk can be applied.
    pub valid: bool,
}

/// Outcome of [`ReplicaApplier::apply_chunk`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ApplyOutcome {
    /// The chunk (or its whole-frame prefix) was applied durably and
    /// the cursor advanced to `offset`.
    Applied {
        /// Records applied from this chunk.
        records: u64,
        /// The new cursor offset.
        offset: u64,
    },
    /// The chunk does not start at the follower's cursor (or the
    /// cursor is invalid); nothing was applied. The sender should
    /// re-read the status and restart from there.
    Conflict {
        /// The follower's actual cursor.
        status: CursorStatus,
    },
}

#[derive(Debug, Clone, Copy)]
struct Cursor {
    generation: u64,
    offset: u64,
    store_version: u64,
}

const CURSOR_FORMAT: &str = "pager-replica/v1";

/// Applies a leader's shipped state into a local [`DurableStore`],
/// tracking one durable cursor per source node.
pub struct ReplicaApplier {
    durable: Arc<DurableStore>,
    io: Arc<dyn StorageIo>,
    dir: PathBuf,
    /// Store version recovered at open: the yardstick cursors loaded
    /// from disk are validated against (see the module docs).
    version_at_open: u64,
    /// Per-source cursor cache; `None` marks a known-invalid cursor.
    /// Held across the whole apply so chunks for one source are
    /// serialized. Lock order: `replica` before the durable store's
    /// `wal`, never the other way.
    replica: Mutex<HashMap<String, Option<Cursor>>>,
}

/// `source` embedded in a file name, defanged.
fn sanitize(source: &str) -> String {
    source
        .chars()
        .map(|c| {
            if c.is_ascii_alphanumeric() || c == '-' {
                c
            } else {
                '_'
            }
        })
        .collect()
}

fn cursor_name(source: &str) -> String {
    format!("replica.{}.cursor", sanitize(source))
}

impl ReplicaApplier {
    /// Wraps `durable` (already opened and recovered) with replica
    /// cursor state stored in `dir` on `io` — normally the same
    /// directory and backend as the store itself.
    #[must_use]
    pub fn new(durable: Arc<DurableStore>, io: Arc<dyn StorageIo>, dir: &Path) -> ReplicaApplier {
        let version_at_open = durable.store().stats().version;
        ReplicaApplier {
            durable,
            io,
            dir: dir.to_path_buf(),
            version_at_open,
            replica: Mutex::new(HashMap::new()),
        }
    }

    /// The wrapped store.
    #[must_use]
    pub fn durable(&self) -> &Arc<DurableStore> {
        &self.durable
    }

    fn load_cursor(&self, source: &str) -> Option<Cursor> {
        let bytes = self.io.read(&self.dir.join(cursor_name(source))).ok()?;
        let text = std::str::from_utf8(&bytes).ok()?;
        let value = jsonio::parse(text.trim_end()).ok()?;
        if value.get("format").and_then(Value::as_str) != Some(CURSOR_FORMAT) {
            return None;
        }
        let cursor = Cursor {
            generation: value.get("generation").and_then(Value::as_u64)?,
            offset: value.get("offset").and_then(Value::as_u64)?,
            store_version: value.get("store_version").and_then(Value::as_u64)?,
        };
        // A cursor written for a different store state is ambiguous:
        // the crash landed between the durable apply and the cursor
        // write. Refuse it and force a bootstrap.
        (cursor.store_version == self.version_at_open).then_some(cursor)
    }

    fn persist_cursor(&self, source: &str, cursor: Cursor) -> Result<(), DurableError> {
        let line = format!(
            "{}\n",
            Value::object(vec![
                ("format", Value::from(CURSOR_FORMAT)),
                ("generation", Value::from(cursor.generation)),
                ("offset", Value::from(cursor.offset)),
                ("store_version", Value::from(cursor.store_version)),
            ])
        );
        write_atomic(
            self.io.as_ref(),
            &self.dir.join(cursor_name(source)),
            line.as_bytes(),
        )
        .map_err(|e| DurableError::Degraded(format!("persist replica cursor: {e}")))
    }

    fn status_locked(entry: &Option<Cursor>) -> CursorStatus {
        match entry {
            Some(cursor) => CursorStatus {
                generation: cursor.generation,
                offset: cursor.offset,
                valid: true,
            },
            None => CursorStatus {
                generation: 0,
                offset: 0,
                valid: false,
            },
        }
    }

    /// The follower's cursor for `source`, loading (and validating)
    /// the persisted cursor on first access after open.
    #[must_use]
    pub fn cursor(&self, source: &str) -> CursorStatus {
        let _cls = pager_core::lockcheck::acquire("replica");
        let mut replica = self.replica.lock().unwrap_or_else(PoisonError::into_inner);
        let entry = replica
            .entry(source.to_string())
            .or_insert_with(|| self.load_cursor(source));
        Self::status_locked(entry)
    }

    /// Installs a leader snapshot: merges the image into the local
    /// store (fast-forward only), checkpoints so the merged state is
    /// durable on its own, and resets the cursor to the position the
    /// image covers.
    ///
    /// Returns the number of profiles merged.
    ///
    /// # Errors
    ///
    /// [`DurableError::Rejected`] for a malformed image,
    /// [`DurableError::Degraded`] when the local disk fails. Either
    /// way the cursor is invalidated, so the next pump round starts
    /// over from a fresh snapshot.
    pub fn install_snapshot(
        &self,
        source: &str,
        generation: u64,
        offset: u64,
        snapshot: &[u8],
    ) -> Result<usize, DurableError> {
        let _cls = pager_core::lockcheck::acquire("replica");
        let mut replica = self.replica.lock().unwrap_or_else(PoisonError::into_inner);
        replica.insert(source.to_string(), None);
        let merged = self
            .durable
            .store()
            .merge_snapshot_bytes(snapshot)
            .map_err(DurableError::Rejected)?;
        // Make the merged profiles durable in their own right: they
        // arrived without local WAL records, so without this a crash
        // would silently drop them until the next routine checkpoint.
        self.durable.checkpoint()?;
        let cursor = Cursor {
            generation,
            offset,
            store_version: self.durable.store().stats().version,
        };
        self.persist_cursor(source, cursor)?;
        replica.insert(source.to_string(), Some(cursor));
        Ok(merged)
    }

    /// Applies one chunk of leader WAL frames starting at
    /// `(generation, offset)`, advancing the cursor to `end` — the
    /// *leader-side* offset after the chunk. The two are distinct
    /// because a shipping pump may filter frames out of the chunk (a
    /// ring deployment ships each node only the records its leader
    /// owns): the cursor must track raw leader WAL offsets, not the
    /// possibly-shorter shipped byte count. An unfiltered pump passes
    /// `offset + frames.len()`.
    ///
    /// The chunk is re-validated by the scanner, applied through the
    /// local durable store, and the cursor advanced — in that order,
    /// so an advanced cursor always points past durable records.
    ///
    /// # Errors
    ///
    /// [`DurableError::Rejected`] when the chunk holds a torn frame
    /// or a record fails to apply (the cursor is invalidated —
    /// exactly-once can no longer be proven),
    /// [`DurableError::Degraded`] on local disk failure.
    pub fn apply_chunk(
        &self,
        source: &str,
        generation: u64,
        offset: u64,
        end: u64,
        frames: &[u8],
    ) -> Result<ApplyOutcome, DurableError> {
        let _cls = pager_core::lockcheck::acquire("replica");
        let mut replica = self.replica.lock().unwrap_or_else(PoisonError::into_inner);
        let entry = replica
            .entry(source.to_string())
            .or_insert_with(|| self.load_cursor(source));
        let status = Self::status_locked(entry);
        if !status.valid || status.generation != generation || status.offset != offset {
            return Ok(ApplyOutcome::Conflict { status });
        }
        if end < offset {
            return Err(DurableError::Rejected(format!(
                "chunk end {end} precedes its offset {offset}"
            )));
        }
        let scanned = scan(frames);
        if scanned.valid_len != frames.len() as u64 {
            // A shipment is always whole frames; a torn one means the
            // transport (not the leader's disk) corrupted it, and the
            // cursor can no longer say which records were covered.
            replica.insert(source.to_string(), None);
            return Err(DurableError::Rejected(format!(
                "torn frame in shipped chunk: {} of {} bytes valid",
                scanned.valid_len,
                frames.len()
            )));
        }
        if scanned.records.is_empty() && end == offset {
            return Ok(ApplyOutcome::Applied { records: 0, offset });
        }
        if !scanned.records.is_empty() {
            if let Err(e) = self.durable.apply_records(&scanned.records) {
                // Partial or failed apply: the cursor no longer
                // provably matches the durable state. Invalidate; the
                // pump re-bootstraps.
                replica.insert(source.to_string(), None);
                return Err(e);
            }
        }
        let cursor = Cursor {
            generation,
            offset: end,
            store_version: self.durable.store().stats().version,
        };
        if let Err(e) = self.persist_cursor(source, cursor) {
            replica.insert(source.to_string(), None);
            return Err(e);
        }
        replica.insert(source.to_string(), Some(cursor));
        Ok(ApplyOutcome::Applied {
            records: scanned.records.len() as u64,
            offset: cursor.offset,
        })
    }
}
