//! Internal stand-in for the crates.io `criterion` crate.
//!
//! The build environment has no crates-registry access, so this crate
//! vendors the subset of the `criterion 0.5` API the workspace's
//! benches use: [`Criterion::benchmark_group`], `bench_function` /
//! `bench_with_input`, [`BenchmarkId`], [`criterion_group!`] and
//! [`criterion_main!`].
//!
//! Measurement is intentionally simple — warm-up, then a fixed batch
//! of timed iterations reported as mean / min wall-clock time per
//! iteration. No statistical analysis, HTML reports, or comparison to
//! baselines; good enough to eyeball asymptotics and spot regressions
//! by hand. Honors `CRITERION_QUICK=1` for a fast smoke run.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Identifies one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// An id with a function name and a parameter value.
    pub fn new(name: impl Into<String>, parameter: impl core::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            text: format!("{}/{}", name.into(), parameter),
        }
    }

    /// An id carrying only a parameter value.
    pub fn from_parameter(parameter: impl core::fmt::Display) -> BenchmarkId {
        BenchmarkId {
            text: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(name: &str) -> BenchmarkId {
        BenchmarkId {
            text: name.to_string(),
        }
    }
}

/// Drives timed iterations of one benchmark body.
#[derive(Debug)]
pub struct Bencher {
    samples: usize,
    /// Mean and min per-iteration time, filled in by [`Bencher::iter`].
    result: Option<(Duration, Duration)>,
}

impl Bencher {
    /// Times `body` over warm-up plus `samples` measured batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut body: F) {
        // Warm-up and batch sizing: aim for batches of >= 1ms so timer
        // resolution is irrelevant, capped to keep total time bounded.
        let warm_start = Instant::now();
        black_box(body());
        let once = warm_start.elapsed().max(Duration::from_nanos(1));
        let per_batch = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 10_000);
        let per_batch = u64::try_from(per_batch).unwrap_or(1);

        let mut times = Vec::with_capacity(self.samples);
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..per_batch {
                black_box(body());
            }
            times.push(start.elapsed() / u32::try_from(per_batch).unwrap_or(1));
        }
        let total: Duration = times.iter().sum();
        let mean = total / u32::try_from(times.len().max(1)).unwrap_or(1);
        let min = times.iter().min().copied().unwrap_or_default();
        self.result = Some((mean, min));
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of measured batches per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(2);
        self
    }

    /// Benchmarks `body` under `id`.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.sample_size,
            result: None,
        };
        body(&mut bencher);
        report(&self.name, &id.text, bencher.result);
        self
    }

    /// Benchmarks `body` under `id`, passing `input` through.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: impl Into<BenchmarkId>,
        input: &I,
        mut body: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let id = id.into();
        let mut bencher = Bencher {
            samples: self.sample_size,
            result: None,
        };
        body(&mut bencher, input);
        report(&self.name, &id.text, bencher.result);
        self
    }

    /// Ends the group (upstream writes reports here; we print as we go).
    pub fn finish(&mut self) {}
}

fn report(group: &str, id: &str, result: Option<(Duration, Duration)>) {
    match result {
        Some((mean, min)) => {
            println!("{group}/{id:<28} mean {mean:>12.3?}   min {min:>12.3?}");
        }
        None => println!("{group}/{id:<28} (no measurement: iter() never called)"),
    }
}

/// Top-level benchmark driver (mirror of `criterion::Criterion`).
#[derive(Debug, Default)]
pub struct Criterion {
    default_sample_size: usize,
}

impl Criterion {
    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = if self.default_sample_size == 0 {
            default_samples()
        } else {
            self.default_sample_size
        };
        BenchmarkGroup {
            name: name.into(),
            sample_size,
            _criterion: self,
        }
    }

    /// Benchmarks a standalone function.
    pub fn bench_function<F>(&mut self, name: &str, mut body: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher {
            samples: default_samples(),
            result: None,
        };
        body(&mut bencher);
        report("bench", name, bencher.result);
        self
    }
}

fn default_samples() -> usize {
    if std::env::var_os("CRITERION_QUICK").is_some() {
        3
    } else {
        30
    }
}

/// Declares a bench entry point running each listed function.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares `main` for a set of [`criterion_group!`]s.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("smoke");
        group.sample_size(3);
        let mut ran = false;
        group.bench_function(BenchmarkId::from_parameter(1), |b| {
            b.iter(|| black_box(40usize) + 2);
            ran = true;
        });
        group.finish();
        assert!(ran);
    }

    #[test]
    fn ids_format() {
        assert_eq!(BenchmarkId::new("mul", 64).text, "mul/64");
        assert_eq!(BenchmarkId::from_parameter(128).text, "128");
    }
}
