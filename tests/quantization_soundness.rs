//! Property test: serving a cached strategy to any instance that
//! *quantizes to the same cache key* is sound — its expected paging
//! cost is within a configurable bound of the strategy that would
//! have been planned for the instance directly.
//!
//! This is the correctness contract of `pager-service`'s quantized
//! fingerprint cache: a key collision only ever substitutes a
//! strategy planned for an instance at most `1/grid` away per entry,
//! and expected paging is Lipschitz in the probabilities (each entry
//! perturbs EP by at most `c`, the cost of paging every cell).

use conference_call::pager::fingerprint::quantize_row;
use conference_call::prelude::*;
use conference_call::service::{plan, TierPolicy, Variant};
use pager_core::CancelToken;
use proptest::prelude::*;
use proptest::strategy::Strategy as _;

/// Quantisation grid under test (the service default).
const GRID: u32 = 1000;

/// EP-difference budget for two instances sharing a cache key:
/// `FACTOR · m · c² / GRID`. Each of the `m·c` entries may differ by
/// ~`2/GRID` after renormalisation, and an entry perturbation of δ
/// moves EP by at most `c·δ`; the factor absorbs renormalisation and
/// the round trip through both instances.
const FACTOR: f64 = 8.0;

fn ep_bound(m: usize, c: usize) -> f64 {
    FACTOR * m as f64 * (c * c) as f64 / f64::from(GRID)
}

/// A valid probability row of length `c` built from integer weights.
fn row_strategy(c: usize) -> impl proptest::strategy::Strategy<Value = Vec<f64>> {
    proptest::collection::vec(1u32..1000, c).prop_map(|weights| {
        let total: f64 = weights.iter().map(|&w| f64::from(w)).sum();
        weights.into_iter().map(|w| f64::from(w) / total).collect()
    })
}

/// An instance plus a jittered twin. The jitter is well below the
/// bucket width `1/GRID`, so the twin usually (not always — bucket
/// edges exist) lands on the same cache key; cases where it does not
/// are discarded with `prop_assume`.
fn twin_strategy(
    m: core::ops::Range<usize>,
    c: core::ops::Range<usize>,
) -> impl proptest::strategy::Strategy<Value = (Instance, Instance)> {
    (m, c).prop_flat_map(|(m, c)| {
        (
            proptest::collection::vec(row_strategy(c), m),
            proptest::collection::vec(proptest::collection::vec(-1.0e-4..1.0e-4f64, c), m),
        )
            .prop_map(|(rows, jitter)| {
                let twin_rows: Vec<Vec<f64>> = rows
                    .iter()
                    .zip(&jitter)
                    .map(|(row, noise)| {
                        let bumped: Vec<f64> = row
                            .iter()
                            .zip(noise)
                            .map(|(p, n)| (p + n).max(1e-9))
                            .collect();
                        let total: f64 = bumped.iter().sum();
                        bumped.into_iter().map(|p| p / total).collect()
                    })
                    .collect();
                (
                    Instance::from_rows(rows).expect("rows are valid"),
                    Instance::from_rows(twin_rows).expect("twin rows are valid"),
                )
            })
    })
}

fn same_key(a: &Instance, b: &Instance) -> bool {
    a.quantized_buckets(GRID) == b.quantized_buckets(GRID)
}

fn quantize_instance(inst: &Instance) -> Vec<Vec<u32>> {
    (0..inst.num_devices())
        .map(|i| {
            let row: Vec<f64> = (0..inst.num_cells()).map(|j| inst.prob(i, j)).collect();
            quantize_row(&row, GRID)
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Exact tier: the optimum planned for a key-sharing twin stays
    /// within the quantisation bound of the instance's own optimum.
    #[test]
    fn exact_cache_hits_are_sound(pair in twin_strategy(1..4, 3..9), d in 2usize..4) {
        let (original, twin) = pair;
        prop_assume!(same_key(&original, &twin));
        let delay = Delay::new(d.min(original.num_cells())).unwrap();
        let policy = TierPolicy::default();
        // What the cache would serve the twin (planned for the
        // original) vs what the twin would get on a cold miss.
        let served = plan(&original, delay, Variant::Exact, &policy, &CancelToken::never()).unwrap();
        let own = plan(&twin, delay, Variant::Exact, &policy, &CancelToken::never()).unwrap();
        let served_ep = twin.expected_paging(&served.strategy).unwrap();
        let own_ep = twin.expected_paging(&own.strategy).unwrap();
        // The twin's own plan is optimal for it, so the served plan
        // can only be worse — but no worse than the bound.
        prop_assert!(served_ep >= own_ep - 1e-9);
        let bound = ep_bound(twin.num_devices(), twin.num_cells());
        prop_assert!(
            served_ep - own_ep <= bound,
            "served EP {served_ep} vs own EP {own_ep}: gap {} over bound {bound}",
            served_ep - own_ep
        );
    }

    /// Greedy tier: same contract on instances past the exact tier's
    /// reach (the bound also covers heuristic tie-break flips, which
    /// quantisation makes rare but not impossible).
    #[test]
    fn greedy_cache_hits_are_sound(pair in twin_strategy(2..4, 12..20), d in 2usize..5) {
        let (original, twin) = pair;
        prop_assume!(same_key(&original, &twin));
        let delay = Delay::new(d).unwrap();
        let policy = TierPolicy::default();
        let served = plan(&original, delay, Variant::Greedy, &policy, &CancelToken::never()).unwrap();
        let own = plan(&twin, delay, Variant::Greedy, &policy, &CancelToken::never()).unwrap();
        let served_ep = twin.expected_paging(&served.strategy).unwrap();
        let own_ep = twin.expected_paging(&own.strategy).unwrap();
        let bound = ep_bound(twin.num_devices(), twin.num_cells());
        prop_assert!(
            (served_ep - own_ep).abs() <= bound,
            "served EP {served_ep} vs own EP {own_ep} over bound {bound}"
        );
    }

    /// The fingerprint helpers agree: two instances share a cache key
    /// exactly when every row quantizes identically.
    #[test]
    fn buckets_match_rowwise_quantisation(pair in twin_strategy(1..4, 3..10)) {
        let (original, twin) = pair;
        let rowwise_equal = quantize_instance(&original) == quantize_instance(&twin);
        prop_assert_eq!(same_key(&original, &twin), rowwise_equal);
        if same_key(&original, &twin) {
            prop_assert_eq!(original.fingerprint64(GRID), twin.fingerprint64(GRID));
        }
    }
}
