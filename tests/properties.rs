//! Cross-crate property-based tests (proptest).

use conference_call::pager::optimal::optimal_subset_dp;
use conference_call::pager::{bounds, greedy_strategy_planned};
use conference_call::prelude::*;
use proptest::prelude::*;
// `conference_call::Strategy` (the paging strategy) collides with
// `proptest::strategy::Strategy` (the generator trait) under glob
// imports; name the struct explicitly and bring the trait's methods
// in anonymously.
use conference_call::pager::Strategy;
use proptest::strategy::Strategy as _;

/// A strategy for generating valid probability rows of length `c`.
fn row_strategy(c: usize) -> impl proptest::strategy::Strategy<Value = Vec<f64>> {
    proptest::collection::vec(1u32..1000, c).prop_map(|weights| {
        let total: f64 = weights.iter().map(|&w| f64::from(w)).sum();
        weights.into_iter().map(|w| f64::from(w) / total).collect()
    })
}

fn instance_strategy(
    m: core::ops::Range<usize>,
    c: core::ops::Range<usize>,
) -> impl proptest::strategy::Strategy<Value = Instance> {
    (m, c).prop_flat_map(|(m, c)| {
        proptest::collection::vec(row_strategy(c), m)
            .prop_map(|rows| Instance::from_rows(rows).expect("rows are valid"))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// EP of any strategy lies in [|S_1|, c]; the greedy heuristic's EP
    /// lies between the optimum and e/(e−1) times the optimum.
    #[test]
    fn greedy_within_factor(inst in instance_strategy(1..4, 4..9), d in 2usize..4) {
        let d = d.min(inst.num_cells());
        let delay = Delay::new(d).unwrap();
        let heur = greedy_strategy_planned(&inst, delay);
        let opt = optimal_subset_dp(&inst, delay).unwrap();
        let c = inst.num_cells() as f64;
        prop_assert!(heur.expected_paging <= c + 1e-9);
        prop_assert!(heur.expected_paging >= heur.strategy.group(0).len() as f64 - 1e-9);
        prop_assert!(heur.expected_paging >= opt.expected_paging - 1e-9);
        prop_assert!(heur.expected_paging <= bounds::e_over_e_minus_1() * opt.expected_paging + 1e-9);
    }

    /// Lemma 2.1 closed form equals the direct expectation for random
    /// strategies over random instances.
    #[test]
    fn closed_form_equals_direct(inst in instance_strategy(1..4, 3..9), seed in any::<u64>()) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let c = inst.num_cells();
        let mut order: Vec<usize> = (0..c).collect();
        for i in (1..c).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        let rounds = rng.gen_range(1..=c);
        let mut sizes = vec![1usize; rounds];
        for _ in 0..c - rounds {
            let k = rng.gen_range(0..rounds);
            sizes[k] += 1;
        }
        let strategy = Strategy::from_order_and_sizes(&order, &sizes).unwrap();
        let a = inst.expected_paging(&strategy).unwrap();
        let b = inst.expected_paging_direct(&strategy).unwrap();
        prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    /// More delay never hurts: greedy EP is non-increasing in d.
    #[test]
    fn ep_monotone_in_delay(inst in instance_strategy(1..4, 4..10)) {
        let mut last = f64::INFINITY;
        for d in 1..=inst.num_cells().min(6) {
            let plan = greedy_strategy_planned(&inst, Delay::new(d).unwrap());
            prop_assert!(plan.expected_paging <= last + 1e-9, "d={d}");
            last = plan.expected_paging;
        }
    }

    /// Splitting any group of any strategy never increases EP
    /// (the Section 2 claim behind "optimal length is exactly d").
    #[test]
    fn splitting_a_group_never_hurts(inst in instance_strategy(1..3, 4..8), seed in any::<u64>()) {
        use rand::rngs::StdRng;
        use rand::{Rng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let c = inst.num_cells();
        // A two-group strategy split at a random point of a random order.
        let mut order: Vec<usize> = (0..c).collect();
        for i in (1..c).rev() {
            let j = rng.gen_range(0..=i);
            order.swap(i, j);
        }
        let cut = rng.gen_range(1..c);
        let base = Strategy::from_order_and_sizes(&order, &[cut, c - cut]).unwrap();
        let base_ep = inst.expected_paging(&base).unwrap();
        // Split the second group (if splittable).
        if c - cut >= 2 {
            let cut2 = rng.gen_range(1..c - cut);
            let refined =
                Strategy::from_order_and_sizes(&order, &[cut, cut2, c - cut - cut2]).unwrap();
            let refined_ep = inst.expected_paging(&refined).unwrap();
            prop_assert!(refined_ep <= base_ep + 1e-9, "{refined_ep} vs {base_ep}");
        }
    }

    /// The exact evaluation agrees with f64 to floating-point accuracy.
    #[test]
    fn exact_matches_float(inst in instance_strategy(1..3, 3..7)) {
        let exact = inst.to_exact().unwrap();
        let c = inst.num_cells();
        let strategy = Strategy::from_order_and_sizes(
            &(0..c).collect::<Vec<_>>(),
            &[c.div_ceil(2), c / 2],
        ).unwrap();
        let f = inst.expected_paging(&strategy).unwrap();
        let e = exact.expected_paging(&strategy).unwrap();
        prop_assert!((f - e.to_f64()).abs() < 1e-6);
    }

    /// Monte-Carlo simulation converges to Lemma 2.1 (loose bound at
    /// modest trial counts keeps the property fast).
    #[test]
    fn simulation_converges(inst in instance_strategy(1..3, 4..8), seed in any::<u64>()) {
        let c = inst.num_cells();
        let strategy = Strategy::from_order_and_sizes(
            &(0..c).collect::<Vec<_>>(),
            &[c.div_ceil(2), c / 2],
        ).unwrap();
        let analytic = inst.expected_paging(&strategy).unwrap();
        let report = conference_call::pager::simulation::simulate(&inst, &strategy, 20_000, seed).unwrap();
        // 20k trials of a variable bounded by c: CLT gives ~3σ ≈
        // 3·c/√20000 < 0.2 for c ≤ 8.
        prop_assert!((report.mean_cells_paged - analytic).abs() < 0.25,
            "simulated {} vs analytic {analytic}", report.mean_cells_paged);
    }
}
