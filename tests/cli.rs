//! Integration tests for the `pager` CLI binary.

use std::process::Command;

fn pager() -> Command {
    Command::new(env!("CARGO_BIN_EXE_pager"))
}

fn write_demo() -> tempfile_path::TempPath {
    tempfile_path::write(
        "# the Section 4.3 lower-bound instance\n\
         2/7 1/7 1/7 1/7 1/7 1/7 0 0\n\
         0   1/7 1/7 1/7 1/7 1/7 1/7 1/7\n",
    )
}

/// Minimal temp-file helper (keeps the workspace dependency-free).
mod tempfile_path {
    use std::path::PathBuf;

    pub struct TempPath(pub PathBuf);

    impl Drop for TempPath {
        fn drop(&mut self) {
            let _ = std::fs::remove_file(&self.0);
        }
    }

    pub fn write(content: &str) -> TempPath {
        let mut path = std::env::temp_dir();
        let unique = format!(
            "pager-cli-test-{}-{:?}.txt",
            std::process::id(),
            std::thread::current().id()
        );
        path.push(unique);
        std::fs::write(&path, content).expect("temp file written");
        TempPath(path)
    }
}

#[test]
fn greedy_plan_reports_exact_fraction() {
    let file = write_demo();
    let out = pager()
        .arg(&file.0)
        .args(["--delay", "2", "--exact"])
        .output()
        .expect("pager runs");
    assert!(out.status.success(), "{out:?}");
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("320/49"), "{stdout}");
    assert!(stdout.contains("2 devices x 8 cells"), "{stdout}");
}

#[test]
fn optimal_algorithm_finds_317_49() {
    let file = write_demo();
    let out = pager()
        .arg(&file.0)
        .args(["--delay", "2", "--algorithm", "optimal", "--exact"])
        .output()
        .expect("pager runs");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("317/49"), "{stdout}");
}

#[test]
fn evaluate_mode_scores_a_given_strategy() {
    let file = write_demo();
    let out = pager()
        .arg(&file.0)
        .args(["--evaluate", "1,2,3,4,5 | 0,6,7", "--exact"])
        .output()
        .expect("pager runs");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("317/49"), "{stdout}");
}

#[test]
fn signature_mode_runs() {
    let file = write_demo();
    let out = pager()
        .arg(&file.0)
        .args(["--delay", "3", "--signature", "1"])
        .output()
        .expect("pager runs");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("signature(k=1)"), "{stdout}");
}

#[test]
fn compare_mode_lists_algorithms() {
    let file = write_demo();
    let out = pager()
        .arg(&file.0)
        .args(["--delay", "3", "--compare"])
        .output()
        .expect("pager runs");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    for needle in ["greedy", "fig1", "optimal", "adaptive"] {
        assert!(stdout.contains(needle), "{stdout}");
    }
}

#[test]
fn report_mode_prints_breakdown() {
    let file = write_demo();
    let out = pager()
        .arg(&file.0)
        .args(["--delay", "3", "--report"])
        .output()
        .expect("pager runs");
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("Pr[stop]"), "{stdout}");
    assert!(stdout.contains("expected rounds"), "{stdout}");
}

#[test]
fn missing_file_fails_cleanly() {
    let out = pager()
        .arg("/definitely/not/a/file.txt")
        .output()
        .expect("pager runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("cannot read"), "{stderr}");
}

#[test]
fn bad_arguments_print_usage() {
    let out = pager().arg("--nonsense").output().expect("pager runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn bad_strategy_spec_rejected() {
    let file = write_demo();
    let out = pager()
        .arg(&file.0)
        .args(["--evaluate", "0,0 | 1"])
        .output()
        .expect("pager runs");
    assert!(!out.status.success());
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("bad strategy spec"), "{stderr}");
}
