//! Cross-crate verification of the paper's headline claims.

use conference_call::gen::{DistributionFamily, InstanceGenerator};
use conference_call::hardness::partition::{planted_no, planted_yes};
use conference_call::hardness::quasipartition::Qp1Instance;
use conference_call::hardness::reduction::verify_reduction;
use conference_call::pager::bounds::e_over_e_minus_1;
use conference_call::pager::optimal::optimal_subset_dp;
use conference_call::pager::{greedy_strategy_planned, lower_bound_instance};
use conference_call::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Section 1.1: a single uniform device, two rounds, halving — the
/// optimal strategy pages c/2 then c/2 for EP = 3c/4, a c/4 saving
/// over the GSM MAP / IS-41 blanket baseline.
#[test]
fn uniform_halving_example() {
    for c in [4usize, 10, 50, 100] {
        let inst = Instance::uniform(1, c).unwrap();
        let plan = single_user_optimal(&inst, Delay::new(2).unwrap()).unwrap();
        assert_eq!(plan.strategy.group_sizes(), vec![c / 2, c / 2]);
        assert!(
            (plan.expected_paging - 0.75 * c as f64).abs() < 1e-9,
            "c={c}"
        );
    }
}

/// Theorem 4.8: the heuristic's expected paging never exceeds
/// e/(e−1) times the optimum — across every workload family, device
/// count, and delay for which exact ground truth is computable.
#[test]
fn heuristic_within_proven_factor_everywhere() {
    let mut rng = StdRng::seed_from_u64(4242);
    let bound = e_over_e_minus_1();
    let mut worst: f64 = 1.0;
    for family in DistributionFamily::ALL {
        let gen = InstanceGenerator::new(*family);
        for _ in 0..8 {
            let m = rng.gen_range(1..=3);
            let c = rng.gen_range(4..=9);
            let inst = gen.generate(m, c, &mut rng);
            for d in 2..=3.min(c) {
                let delay = Delay::new(d).unwrap();
                let heur = greedy_strategy_planned(&inst, delay);
                let opt = optimal_subset_dp(&inst, delay).unwrap();
                let ratio = heur.expected_paging / opt.expected_paging;
                assert!(
                    ratio <= bound + 1e-9,
                    "{family:?} m={m} c={c} d={d}: ratio {ratio}"
                );
                assert!(ratio >= 1.0 - 1e-9);
                worst = worst.max(ratio);
            }
        }
    }
    // The paper's lower bound says a ratio above 320/317 is possible,
    // but random instances rarely reach it; at minimum the measured
    // worst case must stay within the proven window.
    assert!(worst <= bound);
}

/// Section 4.3: the 320/317 instance, certified end to end with exact
/// arithmetic (heuristic 320/49, exhaustive optimum 317/49).
#[test]
fn lower_bound_instance_certified() {
    let exact = lower_bound_instance::instance_exact().unwrap();
    let heur =
        conference_call::pager::greedy_strategy_exact(&exact, Delay::new(2).unwrap()).unwrap();
    let opt = conference_call::pager::optimal::optimal_two_round_exact(&exact).unwrap();
    assert_eq!(heur.expected_paging, lower_bound_instance::heuristic_ep());
    assert_eq!(opt.expected_paging, lower_bound_instance::optimal_ep());
    let ratio = &heur.expected_paging / &opt.expected_paging;
    assert_eq!(ratio, lower_bound_instance::ratio());
    // The certified ratio sits strictly inside (1, e/(e−1)).
    let r = ratio.to_f64();
    assert!(r > 1.0 && r < e_over_e_minus_1());
}

/// Section 3.1: the NP-hardness equivalence — Partition YES instances
/// map to Conference Call instances whose optimum meets the analytic
/// LB exactly; NO instances stay strictly above it.
#[test]
fn hardness_reduction_equivalence_on_planted_instances() {
    let mut rng = StdRng::seed_from_u64(7);
    for trial in 0..6 {
        // Build Quasipartition1 instances directly from planted
        // Partition instances padded to a multiple of 3 with zeros
        // (zeros keep the YES/NO answer only when padded carefully, so
        // instead draw QP1-sized instances: 6 sizes).
        let yes = planted_yes(&mut rng, 6, 12);
        // A planted YES Partition instance is *also* a QP1 YES instance
        // only when a half-sum subset of size 2c/3 = 4 exists; enforce
        // by construction: duplicate the instance halves.
        let sizes = yes.sizes().to_vec();
        let qp1 = Qp1Instance::new(sizes);
        if let Ok(verdict) = verify_reduction(&qp1) {
            assert!(verdict.equivalence_holds(), "trial {trial}: {verdict:?}");
        }
        let no = planted_no(&mut rng, 6, 12);
        let qp1 = Qp1Instance::new(no.sizes().to_vec());
        if let Ok(verdict) = verify_reduction(&qp1) {
            assert!(!verdict.qp1_yes, "odd-total instances cannot be YES");
            assert!(verdict.equivalence_holds(), "trial {trial}: {verdict:?}");
            assert!(verdict.optimal_ep > verdict.lb);
        }
    }
}

/// Lemma 2.1 holds with exact arithmetic across random strategies:
/// closed form == direct round-by-round expectation == exact rational
/// evaluation.
#[test]
fn lemma_2_1_three_ways() {
    let mut rng = StdRng::seed_from_u64(99);
    let gen = InstanceGenerator::new(DistributionFamily::Dirichlet);
    for _ in 0..10 {
        let m = rng.gen_range(1..=4);
        let c = rng.gen_range(3..=8);
        let inst = gen.generate(m, c, &mut rng);
        // A random ordered partition.
        let mut cells: Vec<usize> = (0..c).collect();
        for i in (1..c).rev() {
            let j = rng.gen_range(0..=i);
            cells.swap(i, j);
        }
        let rounds = rng.gen_range(1..=c);
        let mut sizes = vec![1usize; rounds];
        for _ in 0..c - rounds {
            let k = rng.gen_range(0..rounds);
            sizes[k] += 1;
        }
        let strategy = Strategy::from_order_and_sizes(&cells, &sizes).unwrap();
        let closed = inst.expected_paging(&strategy).unwrap();
        let direct = inst.expected_paging_direct(&strategy).unwrap();
        let exact = inst.to_exact().unwrap().expected_paging(&strategy).unwrap();
        assert!((closed - direct).abs() < 1e-9);
        assert!((closed - exact.to_f64()).abs() < 1e-6);
    }
}

/// Section 4.1: the m = 2, d = 2 linear-scan algorithm is a
/// 4/3-approximation (checked against the exhaustive optimum).
#[test]
fn two_device_two_round_within_4_3() {
    let mut rng = StdRng::seed_from_u64(55);
    for family in DistributionFamily::ALL {
        let gen = InstanceGenerator::new(*family);
        for _ in 0..6 {
            let c = rng.gen_range(4..=10);
            let inst = gen.generate(2, c, &mut rng);
            let scan = conference_call::pager::two_device_two_round(&inst).unwrap();
            let opt = optimal_subset_dp(&inst, Delay::new(2).unwrap()).unwrap();
            let ratio = scan.expected_paging / opt.expected_paging;
            assert!(ratio <= 4.0 / 3.0 + 1e-9, "{family:?} c={c}: {ratio}");
        }
    }
}
