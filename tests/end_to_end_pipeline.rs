//! End-to-end pipeline tests: mobility → estimation → planning →
//! measurement, spanning `cellnet`, `pager-core` and the root planner
//! bridge.

use cellnet::area::LocationAreaPlan;
use cellnet::estimator;
use cellnet::mobility::{empirical_distribution, HomingWalk, MobilityModel, RandomWalk};
use cellnet::system::{BlanketPlanner, System, SystemConfig};
use cellnet::topology::Topology;
use conference_call::planner::GreedyPlanner;
use conference_call::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Movement histories estimate the true stationary distribution well
/// enough that plans made on the estimate are near-plans on the truth.
#[test]
fn estimation_supports_planning() {
    let topology = Topology::grid(4, 4);
    let mut rng = StdRng::seed_from_u64(11);
    // True long-run distribution of a homing walk.
    let home = topology.cell_at(1, 1);
    let mut model = HomingWalk::new(home, 0.6);
    let truth = empirical_distribution(&mut model, &topology, 0, 300_000, &mut rng);

    // A short history (what the system would have observed).
    let mut short = HomingWalk::new(home, 0.6);
    let mut cell = 0usize;
    let mut history = Vec::new();
    for _ in 0..3_000 {
        cell = short.next_cell(cell, &topology, &mut rng);
        history.push(cell);
    }
    let estimate = estimator::empirical(&history, topology.num_cells(), 0.5);
    let tv = estimator::total_variation(&truth, &estimate);
    assert!(tv < 0.15, "estimate too far from truth: tv = {tv}");

    // Plan on the estimate, evaluate on the truth: still beats blanket.
    let est_inst = Instance::from_rows(vec![estimate]).unwrap();
    let plan = greedy_strategy(&est_inst, Delay::new(3).unwrap());
    let truth_sum: f64 = truth.iter().sum();
    let truth_row: Vec<f64> = truth.iter().map(|p| p / truth_sum).collect();
    let truth_inst = Instance::from_rows(vec![truth_row]).unwrap();
    let ep = truth_inst.expected_paging(&plan).unwrap();
    assert!(
        ep < 0.9 * topology.num_cells() as f64,
        "planned EP {ep} should beat blanket"
    );
}

/// In the full system simulation, the greedy planner pages strictly
/// fewer cells than the blanket baseline at identical reporting cost,
/// and every call still finds all participants.
#[test]
fn greedy_beats_blanket_in_system_simulation() {
    let build = |seed: u64| {
        let topology = Topology::grid(6, 6);
        let areas = LocationAreaPlan::tiles(&topology, 3, 3);
        let mut config = SystemConfig::new(topology, areas, 8);
        config.call_size = 3;
        config.paging_delay = 3;
        config.horizon = 600.0;
        config.mean_call_interval = 3.0;
        let mobility: Vec<RandomWalk> = (0..8).map(|_| RandomWalk::new(0.3)).collect();
        System::new(config, mobility, seed)
    };
    let blanket = build(2002).run(&BlanketPlanner);
    let greedy = build(2002).run(&GreedyPlanner::default());
    assert!(blanket.calls.len() > 20, "need a meaningful sample");
    assert_eq!(blanket.usage.reports, greedy.usage.reports);
    assert_eq!(blanket.usage.searches, greedy.usage.searches);
    assert!(
        greedy.usage.pages < blanket.usage.pages,
        "greedy {} vs blanket {}",
        greedy.usage.pages,
        blanket.usage.pages
    );
    assert!(greedy.calls.iter().all(|c| c.found_all));
    // Blanket uses exactly one round; greedy uses more rounds on
    // average (that is the delay/paging trade-off).
    assert!(greedy.usage.paging_rounds > blanket.usage.paging_rounds);
}

/// The planner bridge produces strategies whose analytic EP matches
/// Monte-Carlo measurement on estimated instances.
#[test]
fn planner_bridge_consistent_with_simulation() {
    let mut rng = StdRng::seed_from_u64(31);
    let topology = Topology::line(12);
    let mut model = RandomWalk::new(0.4);
    let mut histories: Vec<Vec<usize>> = Vec::new();
    for start in [0usize, 6, 11] {
        let mut cell = start;
        let mut h = Vec::new();
        for _ in 0..2_000 {
            cell = model.next_cell(cell, &topology, &mut rng);
            h.push(cell);
        }
        histories.push(h);
    }
    let rows: Vec<Vec<f64>> = histories
        .iter()
        .map(|h| estimator::recency_weighted(h, 12, 0.999, 0.25))
        .collect();
    let inst = Instance::from_rows(rows).unwrap();
    let plan = conference_call::pager::greedy_strategy_planned(&inst, Delay::new(3).unwrap());
    let report =
        conference_call::pager::simulation::simulate(&inst, &plan.strategy, 150_000, 77).unwrap();
    assert!(
        (report.mean_cells_paged - plan.expected_paging).abs() < 0.05,
        "simulated {} vs analytic {}",
        report.mean_cells_paged,
        plan.expected_paging
    );
}
