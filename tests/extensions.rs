//! Integration tests for the Section 5 extensions: Yellow Pages,
//! Signature, adaptive, and bandwidth-limited paging, checked for
//! mutual consistency.

use conference_call::gen::{DistributionFamily, InstanceGenerator};
use conference_call::pager::adaptive::adaptive_expected_paging;
use conference_call::pager::bandwidth::greedy_strategy_bounded;
use conference_call::pager::signature::{expected_paging_signature, greedy_signature};
use conference_call::pager::yellow_pages::{best_single_device, expected_paging_yellow};
use conference_call::pager::{greedy_strategy_planned, optimal};
use conference_call::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Signature interpolates: for any fixed strategy,
/// `EP_YP = EP_sig(1) <= EP_sig(2) <= … <= EP_sig(m) = EP_CC`.
#[test]
fn signature_interpolates_between_yellow_pages_and_conference() {
    let mut rng = StdRng::seed_from_u64(13);
    let gen = InstanceGenerator::new(DistributionFamily::Dirichlet);
    for _ in 0..5 {
        let inst = gen.generate(4, 8, &mut rng);
        let plan = greedy_strategy_planned(&inst, Delay::new(3).unwrap());
        let yp = expected_paging_yellow(&inst, &plan.strategy).unwrap();
        let cc = inst.expected_paging(&plan.strategy).unwrap();
        let mut last = yp;
        for k in 1..=4 {
            let sig = expected_paging_signature(&inst, &plan.strategy, k).unwrap();
            assert!(sig >= last - 1e-9, "k={k}");
            last = sig;
        }
        assert!((last - cc).abs() < 1e-9, "k = m must equal conference call");
        assert!((expected_paging_signature(&inst, &plan.strategy, 1).unwrap() - yp).abs() < 1e-12);
    }
}

/// The greedy signature planner's reported EP matches re-evaluation,
/// and k = m reproduces the conference-call greedy exactly.
#[test]
fn greedy_signature_consistency() {
    let mut rng = StdRng::seed_from_u64(14);
    let inst = InstanceGenerator::new(DistributionFamily::Hotspot).generate(3, 9, &mut rng);
    for k in 1..=3 {
        let plan = greedy_signature(&inst, Delay::new(3).unwrap(), k).unwrap();
        let ep = expected_paging_signature(&inst, &plan.strategy, k).unwrap();
        assert!((ep - plan.expected_paging).abs() < 1e-9, "k={k}");
    }
    let cc = greedy_strategy_planned(&inst, Delay::new(3).unwrap());
    let sig_m = greedy_signature(&inst, Delay::new(3).unwrap(), 3).unwrap();
    assert!((cc.expected_paging - sig_m.expected_paging).abs() < 1e-9);
}

/// The best-single-device Yellow Pages heuristic stays within a factor
/// m of the exhaustive optimum (the m-approximation the paper reports).
#[test]
fn yellow_pages_m_approximation() {
    let mut rng = StdRng::seed_from_u64(15);
    for family in [
        DistributionFamily::Dirichlet,
        DistributionFamily::Hotspot,
        DistributionFamily::Zipf,
    ] {
        let gen = InstanceGenerator::new(family);
        for _ in 0..4 {
            let m = 3usize;
            let inst = gen.generate(m, 7, &mut rng);
            let delay = Delay::new(3).unwrap();
            let single = best_single_device(&inst, delay).unwrap();
            let opt = conference_call::pager::yellow_pages::optimal_yellow_exhaustive(&inst, delay)
                .unwrap();
            assert!(
                single.expected_paging <= m as f64 * opt.expected_paging + 1e-9,
                "{family:?}: {} vs m*{}",
                single.expected_paging,
                opt.expected_paging
            );
        }
    }
}

/// Adaptive paging never does worse than the oblivious greedy on
/// random instances (its first round is identical; replanning uses
/// strictly more information).
#[test]
fn adaptive_no_worse_than_oblivious_on_random_instances() {
    let mut rng = StdRng::seed_from_u64(16);
    let gen = InstanceGenerator::new(DistributionFamily::Dirichlet);
    for trial in 0..6 {
        let inst = gen.generate(2, 8, &mut rng);
        for d in 2..=4 {
            let delay = Delay::new(d).unwrap();
            let oblivious = greedy_strategy_planned(&inst, delay);
            let adaptive = adaptive_expected_paging(&inst, delay).unwrap();
            assert!(
                adaptive <= oblivious.expected_paging + 1e-6,
                "trial {trial} d={d}: adaptive {adaptive} vs oblivious {}",
                oblivious.expected_paging
            );
        }
    }
}

/// Bandwidth caps interact sanely with the optimum: the capped greedy
/// is sandwiched between the uncapped greedy and blanket paging.
#[test]
fn bandwidth_sandwich() {
    let mut rng = StdRng::seed_from_u64(17);
    let inst = InstanceGenerator::new(DistributionFamily::Geometric).generate(2, 10, &mut rng);
    let delay = Delay::new(4).unwrap();
    let free = greedy_strategy_planned(&inst, delay);
    for b in 3..=10 {
        let capped = greedy_strategy_bounded(&inst, delay, b).unwrap();
        assert!(
            capped.expected_paging >= free.expected_paging - 1e-9,
            "b={b}"
        );
        assert!(capped.expected_paging <= 10.0 + 1e-9, "b={b}");
    }
}

/// The capped planner still respects the proven factor against the
/// *capped* optimum (computed exhaustively for a small instance).
#[test]
fn bandwidth_capped_vs_uncapped_optimum() {
    let mut rng = StdRng::seed_from_u64(18);
    let inst = InstanceGenerator::new(DistributionFamily::Dirichlet).generate(2, 8, &mut rng);
    let delay = Delay::new(4).unwrap();
    // The uncapped optimum lower-bounds every capped strategy.
    let opt = optimal::optimal_subset_dp(&inst, delay).unwrap();
    for b in 2..=8 {
        let capped = greedy_strategy_bounded(&inst, delay, b).unwrap();
        assert!(
            capped.expected_paging >= opt.expected_paging - 1e-9,
            "b={b}"
        );
    }
}
