//! Stress tests for the deadline-aware request lifecycle: spawn the
//! real `pager-serve` binary with a small worker pool and a tight
//! admission queue, then prove three properties under load:
//!
//! 1. **Backpressure** — a burst at ~4× the server's capacity
//!    (workers + queue slots) is answered *immediately* for every
//!    request: accepted work gets a plan, excess load is shed with
//!    `"code": "overloaded"` and a `retry_after_ms` hint, and nothing
//!    blocks behind an unbounded backlog.
//! 2. **Deadline downgrade** — an exact-tier request whose deadline
//!    expires mid-solve comes back as the greedy approximation with
//!    `"tier": "greedy", "downgraded": true` instead of arriving late.
//! 3. **Drain** — a shutdown issued while solves are in flight answers
//!    every admitted request before the process exits.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use jsonio::Value;

/// Server capacity in the overload test: jobs solving plus jobs
/// queued. Everything beyond this in a simultaneous burst of distinct
/// instances must be shed.
const WORKERS: usize = 2;
const QUEUE_DEPTH: usize = 4;
const CAPACITY: usize = WORKERS + QUEUE_DEPTH;
/// 4× the server's capacity.
const BURST: usize = 4 * CAPACITY;

/// Cells per instance: big enough that the exact subset-DP takes
/// hundreds of milliseconds (debug build), so a burst genuinely piles
/// up behind the two workers instead of draining instantly.
const CELLS: usize = 14;

struct Server {
    child: Option<Child>,
    port: u16,
}

impl Server {
    fn spawn(extra_args: &[&str]) -> Server {
        let mut args = vec!["--addr", "127.0.0.1:0", "--metrics-json"];
        args.extend_from_slice(extra_args);
        let mut child = Command::new(env!("CARGO_BIN_EXE_pager-serve"))
            .args(&args)
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn pager-serve");
        let stderr = child.stderr.take().expect("child stderr");
        let mut lines = BufReader::new(stderr).lines();
        let banner = lines
            .next()
            .expect("server banner")
            .expect("read server banner");
        let port: u16 = banner
            .rsplit(':')
            .next()
            .and_then(|p| p.trim().parse().ok())
            .unwrap_or_else(|| panic!("no port in banner {banner:?}"));
        std::thread::spawn(move || for _ in lines {});
        Server {
            child: Some(child),
            port,
        }
    }

    fn connect(&self) -> Connection {
        let stream = TcpStream::connect(("127.0.0.1", self.port)).expect("connect");
        Connection {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            writer: BufWriter::new(stream),
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if let Some(child) = self.child.as_mut() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

struct Connection {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Connection {
    fn round_trip(&mut self, request: &str) -> Value {
        writeln!(self.writer, "{request}").expect("send request");
        self.writer.flush().expect("flush request");
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read response");
        jsonio::parse(&line).unwrap_or_else(|e| panic!("bad response {line:?}: {e}"))
    }
}

/// A distinct (per-seed) normalized instance row, heavy on different
/// cells for different seeds so no two burst requests share a
/// quantised fingerprint (distinct keys can never coalesce).
fn distinct_instance_json(seed: usize) -> String {
    let raw: Vec<f64> = (0..CELLS)
        .map(|i| (((i * 7 + seed * 13) % 29) + 1) as f64)
        .collect();
    let total: f64 = raw.iter().sum();
    let cells: Vec<String> = raw.iter().map(|w| format!("{}", w / total)).collect();
    format!("[[{}]]", cells.join(", "))
}

/// Burst 4× the server's capacity with distinct exact-tier requests:
/// every request is answered promptly — a plan for what fits, an
/// `"overloaded"` shed for what does not — and the metrics agree.
#[test]
fn burst_at_4x_capacity_sheds_with_overloaded() {
    let server = Arc::new(Server::spawn(&["--workers", "2", "--queue-depth", "4"]));

    // All clients connect first, then release the burst together.
    let barrier = Arc::new(Barrier::new(BURST));
    let clients: Vec<_> = (0..BURST)
        .map(|t| {
            let server = Arc::clone(&server);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let mut conn = server.connect();
                let instance = distinct_instance_json(t);
                let request = format!(
                    r#"{{"id": {t}, "instance": {instance}, "delay": 3, "variant": "exact"}}"#
                );
                barrier.wait();
                conn.round_trip(&request)
            })
        })
        .collect();

    let mut planned = 0usize;
    let mut shed = 0usize;
    for client in clients {
        let response = client.join().expect("client thread");
        assert_eq!(
            response.get("v").and_then(Value::as_u64),
            Some(1),
            "every response carries the protocol version: {response}"
        );
        match response.get("ok").and_then(Value::as_bool) {
            Some(true) => {
                let cells: usize = response
                    .get("strategy")
                    .and_then(Value::as_array)
                    .expect("strategy")
                    .iter()
                    .map(|g| g.as_array().expect("group").len())
                    .sum();
                assert_eq!(cells, CELLS, "strategy must partition all cells");
                planned += 1;
            }
            Some(false) => {
                assert_eq!(
                    response.get("code").and_then(Value::as_str),
                    Some("overloaded"),
                    "a rejected burst request must be shed, not errored: {response}"
                );
                assert!(
                    response.get("retry_after_ms").and_then(Value::as_u64) > Some(0),
                    "shed responses carry a retry hint: {response}"
                );
                shed += 1;
            }
            None => panic!("response without ok field: {response}"),
        }
    }
    assert_eq!(planned + shed, BURST);
    assert!(
        shed > 0,
        "a 4x burst against capacity {CAPACITY} must shed something"
    );
    assert!(
        planned >= WORKERS,
        "the servers must still plan what fits: planned {planned}"
    );

    // The metrics registry saw the shedding, and the queue gauge is
    // back to idle (bounded: it can never exceed the queue depth, so
    // after the burst it must be zero again).
    let mut conn = server.connect();
    let metrics = conn.round_trip(r#"{"cmd": "metrics"}"#);
    let metrics = metrics.get("metrics").expect("metrics payload");
    let shed_metric = metrics
        .get("requests_shed")
        .and_then(Value::as_u64)
        .unwrap();
    assert!(
        shed_metric >= shed as u64,
        "metrics shed {shed_metric} < observed {shed}"
    );
    let depth = metrics.get("queue_depth").and_then(Value::as_u64).unwrap();
    assert!(
        depth <= QUEUE_DEPTH as u64,
        "queue gauge {depth} exceeds the bound {QUEUE_DEPTH}"
    );
    let stop = conn.round_trip(r#"{"cmd": "shutdown"}"#);
    assert_eq!(stop.get("stopping").and_then(Value::as_bool), Some(true));
}

/// An exact request whose deadline budget cannot cover the subset-DP
/// is downgraded mid-solve: the response is the greedy approximation,
/// flagged as such, and it arrives without waiting out the full solve.
#[test]
fn expired_deadline_downgrades_exact_to_greedy_over_the_wire() {
    let server = Server::spawn(&["--workers", "2"]);
    let mut conn = server.connect();
    let instance = distinct_instance_json(0);
    // ~5ms of budget against a solve that takes hundreds of ms.
    let request = format!(
        r#"{{"id": 7, "instance": {instance}, "delay": 3, "variant": "exact", "deadline_ms": 5}}"#
    );
    let response = conn.round_trip(&request);
    assert_eq!(
        response.get("ok").and_then(Value::as_bool),
        Some(true),
        "{response}"
    );
    assert_eq!(response.get("tier").and_then(Value::as_str), Some("greedy"));
    assert_eq!(
        response.get("downgraded").and_then(Value::as_bool),
        Some(true),
        "an expired exact solve must be flagged as downgraded: {response}"
    );

    // A patient request for the same instance still gets the optimum,
    // proving the downgraded plan did not poison the cache.
    let patient = format!(
        r#"{{"id": 8, "instance": {instance}, "delay": 3, "variant": "exact", "deadline_ms": 60000}}"#
    );
    let response = conn.round_trip(&patient);
    assert_eq!(response.get("tier").and_then(Value::as_str), Some("exact"));
    assert_eq!(
        response.get("downgraded").and_then(Value::as_bool),
        Some(false)
    );

    let metrics = conn.round_trip(r#"{"cmd": "metrics"}"#);
    let metrics = metrics.get("metrics").expect("metrics payload");
    assert!(
        metrics
            .get("deadline_downgrades")
            .and_then(Value::as_u64)
            .unwrap()
            >= 1,
        "the downgrade must be counted: {metrics}"
    );
    let stop = conn.round_trip(r#"{"cmd": "shutdown"}"#);
    assert_eq!(stop.get("stopping").and_then(Value::as_bool), Some(true));
}

/// Shutdown while solves are in flight: the server drains, so every
/// admitted request is answered before the process exits cleanly.
#[test]
fn shutdown_drains_inflight_requests() {
    let server = Arc::new(Server::spawn(&[
        "--workers",
        "2",
        "--queue-depth",
        "8",
        "--drain-ms",
        "30000",
    ]));

    // Fewer clients than capacity: every request is admitted, and the
    // slow exact solves keep them in flight when the shutdown lands.
    let clients: Vec<_> = (0..4)
        .map(|t| {
            let server = Arc::clone(&server);
            std::thread::spawn(move || {
                let mut conn = server.connect();
                let instance = distinct_instance_json(100 + t);
                let request = format!(
                    r#"{{"id": {t}, "instance": {instance}, "delay": 3, "variant": "exact"}}"#
                );
                conn.round_trip(&request)
            })
        })
        .collect();

    // Let the requests reach the workers, then pull the plug while
    // they are still solving.
    std::thread::sleep(Duration::from_millis(50));
    let mut conn = server.connect();
    let stop = conn.round_trip(r#"{"cmd": "shutdown"}"#);
    assert_eq!(stop.get("stopping").and_then(Value::as_bool), Some(true));
    drop(conn);

    // Every in-flight request still gets its complete response.
    for client in clients {
        let response = client.join().expect("client thread");
        assert_eq!(
            response.get("ok").and_then(Value::as_bool),
            Some(true),
            "an admitted request was dropped by shutdown: {response}"
        );
        assert_eq!(response.get("tier").and_then(Value::as_str), Some("exact"));
    }
    let last_response_at = Instant::now();

    // The process exits cleanly (zero pending after the drain), and it
    // exits *promptly*: the drain is wakeup-driven, so once the last
    // response is flushed nothing waits on a poll tick or rides out
    // the 30s drain budget.
    let mut server = Arc::into_inner(server).expect("all clients finished");
    let mut child = server.child.take().expect("child still running");
    let status = child.wait().expect("server exit");
    assert!(status.success(), "server exited with {status}");
    let exit_lag = last_response_at.elapsed();
    assert!(
        exit_lag < Duration::from_secs(2),
        "drained server took {exit_lag:?} to exit after the last response"
    );
}
