//! Real-process cluster end-to-end: N `pager-serve` children behind
//! the `pager-cluster` router, mixed traffic, SIGKILL of a shard
//! owner mid-stream.
//!
//! The acceptance bar this file exists for: killing the owner of a
//! shard loses **zero** fsync-acked observes (the follower holds the
//! WAL-shipped copy), the follower is promoted, and the router serves
//! the shard from the new owner. The binary under test is the real
//! release artifact (`CARGO_BIN_EXE_pager-serve`), the kill is a real
//! SIGKILL, and every assertion runs over real TCP.

use std::time::{Duration, Instant};

use jsonio::Value;
use pager_cluster::{ClusterHarness, HarnessConfig, LineClient};

const HEARTBEAT_MS: u64 = 100;

fn harness(tag: &str, nodes: usize) -> (ClusterHarness, std::path::PathBuf) {
    let data_root = std::env::temp_dir().join(format!(
        "pager-cluster-harness-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&data_root);
    let harness = ClusterHarness::launch(HarnessConfig {
        binary: env!("CARGO_BIN_EXE_pager-serve").into(),
        nodes,
        data_root: data_root.clone(),
        heartbeat_ms: HEARTBEAT_MS,
        vnodes: 16,
    })
    .expect("cluster launch");
    (harness, data_root)
}

fn observe(client: &mut LineClient, device: &str, time: f64, cell: usize) -> Value {
    let line = format!(
        "{{\"cmd\": \"observe\", \"cells\": 4, \"sightings\": [{{\"device\": \"{device}\", \"cell\": {cell}, \"time\": {time}}}]}}"
    );
    client.call(&line).expect("observe round trip")
}

fn probe_present(client: &mut LineClient, device: &str) -> bool {
    let line =
        format!("{{\"cmd\": \"replicate\", \"action\": \"probe\", \"device\": \"{device}\"}}");
    client
        .call(&line)
        .ok()
        .and_then(|v| v.get("present").and_then(Value::as_bool))
        == Some(true)
}

/// Polls until `device` is probe-present on node `index`.
fn await_present(h: &ClusterHarness, index: usize, device: &str, within: Duration) -> bool {
    let deadline = Instant::now() + within;
    loop {
        if let Ok(mut client) = h.node_client(index) {
            if probe_present(&mut client, device) {
                return true;
            }
        }
        if Instant::now() >= deadline {
            return false;
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

#[test]
fn sigkill_of_a_shard_owner_loses_no_acked_observes() {
    let (mut h, data_root) = harness("sigkill", 3);
    let cluster = std::sync::Arc::clone(h.cluster());
    let mut client = h.client().expect("router client");

    // Mixed traffic through the router: observes across all shards
    // plus planning requests interleaved.
    let devices: Vec<String> = (0..60).map(|i| format!("dev-{i}")).collect();
    for (i, device) in devices.iter().enumerate() {
        let v = observe(&mut client, device, i as f64, i % 4);
        assert_eq!(
            v.get("ok").and_then(Value::as_bool),
            Some(true),
            "observe for {device} must ack: {v}"
        );
        if i % 20 == 0 {
            let plan =
                format!("{{\"cmd\": \"plan_devices\", \"devices\": [\"{device}\"], \"delay\": 2}}");
            let v = client.call(&plan).expect("plan round trip");
            assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{v}");
        }
    }

    // Let the pump's WAL shipping catch every acked observe up onto
    // the owners' followers before pulling the trigger.
    let victim = cluster.owner_of(&devices[0]);
    let follower = cluster.ring().follower_of(victim).expect("follower");
    let victim_devices: Vec<&String> = devices
        .iter()
        .filter(|d| cluster.owner_of(d) == victim)
        .collect();
    assert!(!victim_devices.is_empty(), "victim must own some devices");
    for device in &victim_devices {
        assert!(
            await_present(&h, follower, device, Duration::from_secs(10)),
            "{device} must replicate to follower n{follower} before the kill"
        );
    }

    // SIGKILL the shard owner mid-stream, with traffic still flowing.
    h.kill(victim);
    let killed_at = Instant::now();

    // The router keeps acking observes for the dead owner's shard:
    // its failover retry covers the gap until the heartbeat promotes.
    let v = observe(&mut client, victim_devices[0], 1000.0, 2);
    assert_eq!(
        v.get("ok").and_then(Value::as_bool),
        Some(true),
        "observe during the outage must ack via the replica: {v}"
    );

    // The heartbeat declares the owner dead and promotes the follower
    // within a small multiple of the heartbeat interval.
    assert!(
        h.await_liveness(victim, false, Duration::from_millis(HEARTBEAT_MS * 20)),
        "heartbeat must declare the killed owner dead"
    );
    let rerouted_in = killed_at.elapsed();
    assert!(cluster.is_failed_over(victim), "shard must be failed over");
    assert_eq!(
        cluster.route(victim_devices[0]),
        Some(follower),
        "routing must serve the shard from the promoted follower"
    );

    // Zero acked-observe loss: every observe acked before the kill is
    // present on the node now serving the shard.
    for device in &victim_devices {
        let mut node = h.node_client(follower).expect("follower client");
        assert!(
            probe_present(&mut node, device),
            "acked observe for {device} lost after SIGKILL of its owner"
        );
    }

    // The promoted follower reports its new role over the wire.
    let mut node = h.node_client(follower).expect("follower client");
    let v = node.call("{\"cmd\": \"node_info\"}").expect("node_info");
    assert_eq!(
        v.get("node")
            .and_then(|n| n.get("promoted"))
            .and_then(Value::as_bool),
        Some(true),
        "promoted flag must be set on the follower: {v}"
    );

    // And the router serves reads for the shard from the new owner.
    let plan = format!(
        "{{\"cmd\": \"plan_devices\", \"devices\": [\"{}\"], \"delay\": 2}}",
        victim_devices[0]
    );
    let v = client.call(&plan).expect("plan after failover");
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{v}");

    eprintln!(
        "cluster_harness: rerouted in {rerouted_in:?} (heartbeat {HEARTBEAT_MS}ms), \
         {} devices verified loss-free",
        victim_devices.len()
    );

    h.shutdown();
    let _ = std::fs::remove_dir_all(&data_root);
}

#[test]
fn killed_owner_rejoins_after_restart_and_serves_again() {
    let (mut h, data_root) = harness("rejoin", 3);
    let cluster = std::sync::Arc::clone(h.cluster());
    let mut client = h.client().expect("router client");

    // Seed traffic, then kill the owner of dev-0's shard.
    for i in 0..30 {
        let v = observe(&mut client, &format!("dev-{i}"), i as f64, i % 4);
        assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{v}");
    }
    let victim = cluster.owner_of("dev-0");
    let follower = cluster.ring().follower_of(victim).expect("follower");
    assert!(
        await_present(&h, follower, "dev-0", Duration::from_secs(10)),
        "dev-0 must replicate before the kill"
    );
    h.kill(victim);
    assert!(
        h.await_liveness(victim, false, Duration::from_millis(HEARTBEAT_MS * 20)),
        "killed owner must be declared dead"
    );

    // Traffic lands on the promoted follower during the outage.
    let v = observe(&mut client, "dev-0", 500.0, 3);
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{v}");

    // Restart on the same address + data dir: recovery replays the
    // local snapshot/WAL, the pump resyncs what the shard saw during
    // the outage, and the node rejoins the ring.
    h.restart(victim).expect("restart");
    assert!(
        h.await_liveness(victim, true, Duration::from_secs(15)),
        "restarted owner must rejoin the ring"
    );
    assert_eq!(
        cluster.route("dev-0"),
        Some(victim),
        "routing must return to the revived owner"
    );
    assert!(
        await_present(&h, victim, "dev-0", Duration::from_secs(10)),
        "outage-era record must be resynced onto the revived owner"
    );

    // End-to-end through the router once more.
    let v = observe(&mut client, "dev-0", 900.0, 1);
    assert_eq!(v.get("ok").and_then(Value::as_bool), Some(true), "{v}");

    h.shutdown();
    let _ = std::fs::remove_dir_all(&data_root);
}
