//! Crash-recovery integration test: SIGKILL the real `pager-serve`
//! process mid-ingest and prove the acked-write guarantee end to end.
//!
//! The server runs with `--data-dir` and `--fsync always`, so every
//! `observe` response is an ack that the sightings hit stable storage.
//! The test records what was acked, kills the process without warning
//! (no drain, no flush — `SIGKILL` is the whole point), restarts on
//! the same directory, and asserts that every acked sighting is back
//! and the version counter never regresses.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Child, Command, Stdio};

use jsonio::Value;

struct Server {
    child: Option<Child>,
    port: u16,
    /// Stderr lines printed before the listening banner (the recovery
    /// report, when `--data-dir` is in play).
    preamble: Vec<String>,
}

impl Server {
    /// Spawns `pager-serve`, reading stderr until the `listening on`
    /// banner (a durable server prints its recovery report first).
    fn spawn(extra_args: &[&str]) -> Server {
        let mut args = vec!["--addr", "127.0.0.1:0"];
        args.extend_from_slice(extra_args);
        let mut child = Command::new(env!("CARGO_BIN_EXE_pager-serve"))
            .args(&args)
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn pager-serve");
        let stderr = child.stderr.take().expect("child stderr");
        let mut lines = BufReader::new(stderr).lines();
        let mut preamble = Vec::new();
        let port: u16 = loop {
            let line = lines
                .next()
                .expect("server exited before listening")
                .expect("read server stderr");
            if line.contains("listening on") {
                break line
                    .rsplit(':')
                    .next()
                    .and_then(|p| p.trim().parse().ok())
                    .unwrap_or_else(|| panic!("no port in banner {line:?}"));
            }
            preamble.push(line);
        };
        std::thread::spawn(move || for _ in lines {});
        Server {
            child: Some(child),
            port,
            preamble,
        }
    }

    fn connect(&self) -> Connection {
        let stream = TcpStream::connect(("127.0.0.1", self.port)).expect("connect");
        Connection {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            writer: BufWriter::new(stream),
        }
    }

    /// SIGKILL — no drain, no shutdown handshake, no flush.
    fn kill_hard(&mut self) {
        let mut child = self.child.take().expect("child already taken");
        child.kill().expect("kill server");
        child.wait().expect("reap server");
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if let Some(child) = self.child.as_mut() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

struct Connection {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Connection {
    fn round_trip(&mut self, request: &str) -> Value {
        writeln!(self.writer, "{request}").expect("send request");
        self.writer.flush().expect("flush request");
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read response");
        jsonio::parse(&line).unwrap_or_else(|e| panic!("bad response {line:?}: {e}"))
    }

    /// Sends one observe batch; returns the acked `device -> version`
    /// map.
    fn observe(&mut self, cells: usize, sightings: &[(String, usize, f64)]) -> Vec<(String, u64)> {
        let body: Vec<String> = sightings
            .iter()
            .map(|(device, cell, time)| {
                format!(r#"{{"device": "{device}", "cell": {cell}, "time": {time}}}"#)
            })
            .collect();
        let request = format!(
            r#"{{"cmd": "observe", "cells": {cells}, "sightings": [{}]}}"#,
            body.join(", ")
        );
        let response = self.round_trip(&request);
        assert_eq!(
            response.get("ok").and_then(Value::as_bool),
            Some(true),
            "observe refused: {response}"
        );
        let versions = response
            .get("versions")
            .and_then(Value::as_object)
            .expect("versions map");
        versions
            .iter()
            .map(|(device, v)| (device.clone(), v.as_u64().expect("integer version")))
            .collect()
    }
}

/// A scratch data directory unique to this test process.
fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("pager-crash-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// SIGKILL mid-ingest: everything acked before the kill is recovered,
/// the recovery banner accounts for it, and versions stay strictly
/// monotone across the restart.
#[test]
fn sigkill_loses_no_acked_sightings() {
    let data_dir = scratch_dir("sigkill");
    let dir_arg = data_dir.to_str().expect("utf8 temp path");
    let args = [
        "--data-dir",
        dir_arg,
        "--fsync",
        "always",
        "--checkpoint-every",
        "0",
    ];
    let mut server = Server::spawn(&args);
    assert!(
        server
            .preamble
            .iter()
            .any(|l| l.contains("recovered generation 0")),
        "fresh durable server must report recovery: {:?}",
        server.preamble
    );

    // Ingest a burst of acked sightings: 8 devices, 5 rounds each.
    const CELLS: usize = 6;
    const DEVICES: usize = 8;
    const ROUNDS: usize = 5;
    let mut conn = server.connect();
    let mut acked: Vec<(String, u64)> = Vec::new();
    for round in 0..ROUNDS {
        let batch: Vec<(String, usize, f64)> = (0..DEVICES)
            .map(|d| {
                (
                    format!("device-{d}"),
                    (d + round) % CELLS,
                    round as f64 + 1.0,
                )
            })
            .collect();
        acked.extend(conn.observe(CELLS, &batch));
    }
    assert_eq!(acked.len(), DEVICES * ROUNDS);
    let max_acked_version = acked.iter().map(|(_, v)| *v).max().expect("acked versions");

    // Pull the plug, then restart on the same directory.
    server.kill_hard();
    let server = Server::spawn(&args);
    let replayed = format!("{} WAL records replayed", DEVICES * ROUNDS);
    assert!(
        server.preamble.iter().any(|l| l.contains(&replayed)),
        "recovery banner must account for every acked record: {:?}",
        server.preamble
    );

    // Every acked device is known again, and the version counter
    // resumes past everything acked before the crash.
    let mut conn = server.connect();
    let stats = conn.round_trip(r#"{"cmd": "profile_stats"}"#);
    let profiles = stats.get("profiles").expect("profiles payload");
    assert_eq!(
        profiles.get("devices").and_then(Value::as_u64),
        Some(DEVICES as u64),
        "devices lost across SIGKILL: {stats}"
    );
    assert_eq!(
        profiles.get("degraded").and_then(Value::as_bool),
        Some(false),
        "healthy restart must not be degraded: {stats}"
    );
    let bump = conn.observe(CELLS, &[("device-0".to_string(), 0, ROUNDS as f64 + 10.0)]);
    assert!(
        bump[0].1 > max_acked_version,
        "version regressed across restart: {} after acking {max_acked_version}",
        bump[0].1
    );

    // Planning works against the recovered profiles.
    let plan = conn.round_trip(
        r#"{"cmd": "plan_devices", "id": 1, "devices": ["device-0", "device-1"], "delay": 2, "estimator": "empirical"}"#,
    );
    assert_eq!(
        plan.get("ok").and_then(Value::as_bool),
        Some(true),
        "planning failed on recovered profiles: {plan}"
    );

    let stop = conn.round_trip(r#"{"cmd": "shutdown"}"#);
    assert_eq!(stop.get("stopping").and_then(Value::as_bool), Some(true));
    let _ = std::fs::remove_dir_all(&data_dir);
}

/// SIGKILL after a checkpoint: recovery comes back from the rotated
/// snapshot generation, replaying only the post-checkpoint tail, and
/// still loses nothing.
#[test]
fn sigkill_after_checkpoint_recovers_from_the_snapshot() {
    let data_dir = scratch_dir("checkpoint");
    let dir_arg = data_dir.to_str().expect("utf8 temp path");
    let args = [
        "--data-dir",
        dir_arg,
        "--fsync",
        "always",
        "--checkpoint-every",
        "4",
        "--workers",
        "2",
    ];
    let mut server = Server::spawn(&args);
    let mut conn = server.connect();
    const CELLS: usize = 4;
    for i in 0..12usize {
        conn.observe(
            CELLS,
            &[(format!("dev-{}", i % 3), i % CELLS, i as f64 + 1.0)],
        );
    }
    // Wait (bounded) for a background checkpoint to land on disk.
    let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
    loop {
        let rotated = std::fs::read_dir(&data_dir)
            .map(|entries| {
                entries.flatten().any(|e| {
                    let name = e.file_name().to_string_lossy().into_owned();
                    name.starts_with("snapshot.") && !name.starts_with("snapshot.0")
                })
            })
            .unwrap_or(false);
        if rotated {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "no checkpoint landed within 10s"
        );
        std::thread::sleep(std::time::Duration::from_millis(50));
    }

    server.kill_hard();
    let server = Server::spawn(&args);
    assert!(
        server
            .preamble
            .iter()
            .any(|l| l.contains("snapshot") && !l.contains("recovered generation 0")),
        "recovery must come from a rotated generation: {:?}",
        server.preamble
    );
    let mut conn = server.connect();
    let stats = conn.round_trip(r#"{"cmd": "profile_stats"}"#);
    let profiles = stats.get("profiles").expect("profiles payload");
    assert_eq!(
        profiles.get("devices").and_then(Value::as_u64),
        Some(3),
        "devices lost across checkpointed SIGKILL: {stats}"
    );
    let stop = conn.round_trip(r#"{"cmd": "shutdown"}"#);
    assert_eq!(stop.get("stopping").and_then(Value::as_bool), Some(true));
    let _ = std::fs::remove_dir_all(&data_dir);
}
