//! Differential testing: every pair of independent implementations
//! that must agree, checked systematically over random instances.
//!
//! | engine A | engine B | why they agree |
//! |----------|----------|----------------|
//! | Fig. 1 conditional DP | prefix-savings DP | same family optimum |
//! | `d^c` exhaustive | `3^c` subset DP | both exact optima |
//! | subset DP | cell-type DP | exact optima (few types) |
//! | subset DP (exact instance) | exact exhaustive | float vs rational |
//! | signature `k = m` | conference call | same stopping rule |
//! | signature `k = 1` | yellow pages | definition |
//! | bandwidth `b = c` | unconstrained greedy | cap not binding |
//! | adaptive `d = 2` | oblivious greedy | forced second round |
//! | optimal adaptive `d = 2` | optimal oblivious | §5 remark |
//! | `m = 2, d = 2` scan | two-round DP | same family optimum |
//! | QAP encoding (`d = c`) | subset DP (`d = c`) | §5.1 reduction |

use conference_call::gen::{DistributionFamily, InstanceGenerator};
use conference_call::hardness::qap::solve_via_qap;
use conference_call::pager::adaptive::{
    adaptive_expected_paging, optimal_adaptive_expected_paging,
};
use conference_call::pager::bandwidth::greedy_strategy_bounded;
use conference_call::pager::cell_types::optimal_by_types;
use conference_call::pager::signature::{expected_paging_signature, greedy_signature};
use conference_call::pager::yellow_pages::{expected_paging_yellow, greedy_yellow};
use conference_call::pager::ExactInstance;
use conference_call::pager::{fig1, greedy_strategy_planned, optimal, two_device_two_round};
use conference_call::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn random_instance(rng: &mut StdRng, m: usize, c: usize) -> Instance {
    let families = DistributionFamily::ALL;
    let family = families[rng.gen_range(0..families.len())];
    InstanceGenerator::new(family).generate(m, c, rng)
}

#[test]
fn fig1_vs_prefix_dp() {
    let mut rng = StdRng::seed_from_u64(101);
    for _ in 0..40 {
        let m = rng.gen_range(1..=4);
        let c = rng.gen_range(3..=12);
        let inst = random_instance(&mut rng, m, c);
        let d = rng.gen_range(1..=inst.num_cells().min(5));
        let delay = Delay::new(d).unwrap();
        let a = fig1::approximation(&inst, delay).expected_paging;
        let b = greedy_strategy_planned(&inst, delay).expected_paging;
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }
}

#[test]
fn exhaustive_vs_subset_dp() {
    let mut rng = StdRng::seed_from_u64(102);
    for _ in 0..15 {
        let m = rng.gen_range(1..=3);
        let c = rng.gen_range(3..=8);
        let inst = random_instance(&mut rng, m, c);
        let d = rng.gen_range(1..=inst.num_cells().min(4));
        let delay = Delay::new(d).unwrap();
        let a = optimal::optimal_exhaustive(&inst, delay)
            .unwrap()
            .expected_paging;
        let b = optimal::optimal_subset_dp(&inst, delay)
            .unwrap()
            .expected_paging;
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }
}

#[test]
fn subset_dp_vs_cell_types_on_structured_instances() {
    let mut rng = StdRng::seed_from_u64(103);
    for _ in 0..15 {
        // Build an instance with at most 3 distinct columns.
        let c = rng.gen_range(6..=10);
        let m = rng.gen_range(1..=2);
        let mut cols: Vec<Vec<f64>> = Vec::new();
        for _ in 0..3 {
            cols.push((0..m).map(|_| rng.gen_range(1..=9) as f64).collect());
        }
        let assignment: Vec<usize> = (0..c).map(|_| rng.gen_range(0..3)).collect();
        let mut rows = vec![vec![0.0f64; c]; m];
        for (j, &t) in assignment.iter().enumerate() {
            for i in 0..m {
                rows[i][j] = cols[t][i];
            }
        }
        for row in &mut rows {
            let total: f64 = row.iter().sum();
            for p in row.iter_mut() {
                *p /= total;
            }
        }
        let inst = Instance::from_rows(rows).unwrap();
        let d = rng.gen_range(2..=3);
        let delay = Delay::new(d).unwrap();
        let a = optimal_by_types(&inst, delay).unwrap().expected_paging;
        let b = optimal::optimal_subset_dp(&inst, delay)
            .unwrap()
            .expected_paging;
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }
}

#[test]
fn float_vs_exact_exhaustive() {
    use rational::Ratio;
    let mut rng = StdRng::seed_from_u64(104);
    for _ in 0..8 {
        let c = rng.gen_range(3..=6);
        let m = rng.gen_range(1..=2);
        let rows_exact: Vec<Vec<Ratio>> = (0..m)
            .map(|_| {
                let w: Vec<i64> = (0..c).map(|_| rng.gen_range(1..=9)).collect();
                let total: i64 = w.iter().sum();
                w.into_iter()
                    .map(|x| Ratio::from_fraction(x, total))
                    .collect()
            })
            .collect();
        let exact = ExactInstance::from_rows(rows_exact).unwrap();
        let float = exact.to_f64().unwrap();
        let d = rng.gen_range(2..=c.min(3));
        let delay = Delay::new(d).unwrap();
        let a = optimal::optimal_exhaustive_exact(&exact, delay)
            .unwrap()
            .expected_paging;
        let b = optimal::optimal_exhaustive(&float, delay)
            .unwrap()
            .expected_paging;
        assert!((a.to_f64() - b).abs() < 1e-9, "{} vs {b}", a.to_f64());
    }
}

#[test]
fn signature_extremes_match_their_definitions() {
    let mut rng = StdRng::seed_from_u64(105);
    for _ in 0..20 {
        let m = rng.gen_range(2..=4);
        let c = rng.gen_range(4..=10);
        let inst = random_instance(&mut rng, m, c);
        let d = rng.gen_range(1..=4.min(inst.num_cells()));
        let delay = Delay::new(d).unwrap();
        let plan = greedy_strategy_planned(&inst, delay);
        let cc = inst.expected_paging(&plan.strategy).unwrap();
        let sig_m = expected_paging_signature(&inst, &plan.strategy, m).unwrap();
        assert!((cc - sig_m).abs() < 1e-9);
        let yp = expected_paging_yellow(&inst, &plan.strategy).unwrap();
        let sig_1 = expected_paging_signature(&inst, &plan.strategy, 1).unwrap();
        assert!((yp - sig_1).abs() < 1e-12);
        // Planner parity too.
        let a = greedy_signature(&inst, delay, m).unwrap().expected_paging;
        let b = greedy_strategy_planned(&inst, delay).expected_paging;
        assert!((a - b).abs() < 1e-9);
        let ya = greedy_signature(&inst, delay, 1).unwrap().expected_paging;
        let yb = greedy_yellow(&inst, delay).unwrap().expected_paging;
        assert!((ya - yb).abs() < 1e-12);
    }
}

#[test]
fn loose_bandwidth_cap_is_no_cap() {
    let mut rng = StdRng::seed_from_u64(106);
    for _ in 0..20 {
        let m = rng.gen_range(1..=3);
        let c = rng.gen_range(4..=12);
        let inst = random_instance(&mut rng, m, c);
        let d = rng.gen_range(2..=4.min(c));
        let delay = Delay::new(d).unwrap();
        let capped = greedy_strategy_bounded(&inst, delay, c).unwrap();
        let free = greedy_strategy_planned(&inst, delay);
        assert!((capped.expected_paging - free.expected_paging).abs() < 1e-12);
    }
}

#[test]
fn adaptive_d2_equals_oblivious() {
    let mut rng = StdRng::seed_from_u64(107);
    for _ in 0..10 {
        let m = rng.gen_range(1..=3);
        let c = rng.gen_range(4..=9);
        let inst = random_instance(&mut rng, m, c);
        let delay = Delay::new(2).unwrap();
        let heur_adaptive = adaptive_expected_paging(&inst, delay).unwrap();
        let heur_oblivious = greedy_strategy_planned(&inst, delay).expected_paging;
        assert!((heur_adaptive - heur_oblivious).abs() < 1e-9);
        let opt_adaptive = optimal_adaptive_expected_paging(&inst, delay).unwrap();
        let opt_oblivious = optimal::optimal_subset_dp(&inst, delay)
            .unwrap()
            .expected_paging;
        assert!(
            (opt_adaptive - opt_oblivious).abs() < 1e-9,
            "{opt_adaptive} vs {opt_oblivious}"
        );
    }
}

#[test]
fn two_device_scan_vs_two_round_dp() {
    let mut rng = StdRng::seed_from_u64(108);
    for _ in 0..25 {
        let c = rng.gen_range(3..=14);
        let inst = random_instance(&mut rng, 2, c);
        let scan = two_device_two_round(&inst).unwrap().expected_paging;
        let dp = greedy_strategy_planned(&inst, Delay::new(2).unwrap()).expected_paging;
        assert!((scan - dp).abs() < 1e-9, "{scan} vs {dp}");
    }
}

#[test]
fn qap_encoding_vs_subset_dp_full_delay() {
    let mut rng = StdRng::seed_from_u64(109);
    for _ in 0..8 {
        let c = rng.gen_range(3..=6);
        let inst = random_instance(&mut rng, 2, c);
        let (_, qap_ep) = solve_via_qap(&inst);
        let dp = optimal::optimal_subset_dp(&inst, Delay::new(c).unwrap())
            .unwrap()
            .expected_paging;
        assert!((qap_ep - dp).abs() < 1e-9, "{qap_ep} vs {dp}");
    }
}
