//! End-to-end acceptance: sightings → profiles → plans → simulation.
//!
//! Drives `cellnet` mobility through the profile store and the full
//! serving stack, then checks the realised paging cost against the
//! Lemma 2.1 expectation of the served strategies — the closed loop
//! the profile subsystem exists for.

use cellnet::mobility::{MobilityModel, RandomWalk};
use cellnet::Topology;
use conference_call::profiles::{replay, Estimator, ReplayConfig, Step};
use conference_call::service::{Metrics, PagerService, PlanSpec, ServiceConfig};
use pager_core::Delay;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Ground truth: random walks over a topology, one step per time unit.
fn walk_truth(
    topology: &Topology,
    devices: usize,
    steps: usize,
    stay: f64,
    seed: u64,
) -> Vec<Step> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut models: Vec<RandomWalk> = (0..devices).map(|_| RandomWalk::new(stay)).collect();
    let mut positions: Vec<usize> = (0..devices)
        .map(|d| (d * topology.num_cells()) / devices)
        .collect();
    (0..steps)
        .map(|i| {
            for (d, model) in models.iter_mut().enumerate() {
                positions[d] = model.next_cell(positions[d], topology, &mut rng);
            }
            Step {
                time: i as f64,
                cells: positions.clone(),
            }
        })
        .collect()
}

/// With a long empirical history the profile rows converge to the
/// walk's true occupancy distribution, and the true placements at call
/// time are draws from (nearly) that same distribution — so the mean
/// realised paging must match the Lemma 2.1 expectation of the served
/// strategies. Tolerance: ±25% on the ratio.
#[test]
fn realized_paging_matches_lemma_2_1_expectation() {
    let topology = Topology::grid(3, 3);
    let cells = topology.num_cells();
    let truth = walk_truth(&topology, 3, 900, 0.3, 7);
    let service = PagerService::new(ServiceConfig::default());
    let spec = PlanSpec::new(Delay::new(3).unwrap());
    let config = ReplayConfig {
        estimator: Estimator::Empirical,
        observe_every: 1,
        call_every: 11,
        warmup: 300,
    };
    let report = replay(service.profiles(), cells, &truth, &config, |instance| {
        service
            .plan(instance, spec)
            .map(|r| r.plan.strategy.clone())
            .map_err(|e| e.to_string())
    })
    .unwrap();
    assert!(report.calls.len() >= 50, "want a meaningful sample");
    let ratio = report.realized_over_expected();
    assert!(
        (0.75..=1.25).contains(&ratio),
        "realized {} vs expected {} (ratio {ratio})",
        report.mean_realized_paging(),
        report.mean_expected_paging()
    );
    // Plans built from profiles still beat blanket paging.
    assert!(report.mean_realized_paging() < cells as f64);
    service.shutdown();
}

/// Profile versions make cached strategies safe to reuse *and*
/// impossible to serve stale: calls between observations share one
/// cache entry, and every new sighting forces a fresh plan.
#[test]
fn replay_cache_reuse_follows_profile_versions() {
    let topology = Topology::line(5);
    let mut config = ServiceConfig::default();
    // Freeze staleness so distributions depend only on the profile
    // contents, not the query clock — identical requests between
    // observations then key the same cache slot.
    config.profiles.profile.staleness_half_life = f64::INFINITY;
    let service = PagerService::new(config);
    let truth = walk_truth(&topology, 2, 201, 0.4, 11);
    let replay_config = ReplayConfig {
        estimator: Estimator::Empirical,
        observe_every: 100, // sightings at steps 0, 100, 200
        call_every: 10,
        warmup: 5,
    };
    let spec = PlanSpec::new(Delay::new(2).unwrap());
    let report = replay(
        service.profiles(),
        topology.num_cells(),
        &truth,
        &replay_config,
        |instance| {
            service
                .plan(instance, spec)
                .map(|r| r.plan.strategy.clone())
                .map_err(|e| e.to_string())
        },
    )
    .unwrap();
    // Calls at 10..90 share the versions of the step-0 sightings; the
    // observation at step 100 bumps them for the later calls.
    let early = &report.calls[0];
    let later = report
        .calls
        .iter()
        .find(|c| c.step >= 100)
        .expect("calls after the second observation");
    assert_eq!(
        early.versions, report.calls[1].versions,
        "no sighting between the first two calls"
    );
    assert!(later.versions[0] > early.versions[0], "versions bumped");
    let m = service.metrics();
    assert!(
        Metrics::get(&m.cache_hits) >= 8,
        "identical-version calls reuse the cached strategy (hits: {})",
        Metrics::get(&m.cache_hits)
    );
    assert!(
        Metrics::get(&m.cache_misses) >= 2,
        "each observation forces at least one fresh plan"
    );
    service.shutdown();
}
