//! End-to-end test of the `pager-serve` binary: spawn the real
//! server process, hammer it with ≥1k concurrent TCP requests mixing
//! repeated and fresh instances, and check correctness, cache
//! behaviour, and the metrics dump.

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::sync::Arc;

use jsonio::Value;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CLIENT_THREADS: usize = 16;
const REQUESTS_PER_CLIENT: usize = 64; // 16 × 64 = 1024 ≥ 1k
const POOL_SIZE: usize = 8;

struct Server {
    child: Option<Child>,
    port: u16,
}

impl Server {
    fn spawn() -> Server {
        let mut child = Command::new(env!("CARGO_BIN_EXE_pager-serve"))
            .args(["--addr", "127.0.0.1:0", "--workers", "4", "--metrics-json"])
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn pager-serve");
        // The server announces its bound address on stderr.
        let stderr = child.stderr.take().expect("child stderr");
        let mut lines = BufReader::new(stderr).lines();
        let banner = lines
            .next()
            .expect("server banner")
            .expect("read server banner");
        let port: u16 = banner
            .rsplit(':')
            .next()
            .and_then(|p| p.trim().parse().ok())
            .unwrap_or_else(|| panic!("no port in banner {banner:?}"));
        // Keep draining stderr so the child never blocks on a full pipe.
        std::thread::spawn(move || for _ in lines {});
        Server {
            child: Some(child),
            port,
        }
    }

    fn connect(&self) -> Connection {
        let stream = TcpStream::connect(("127.0.0.1", self.port)).expect("connect");
        Connection {
            reader: BufReader::new(stream.try_clone().expect("clone stream")),
            writer: BufWriter::new(stream),
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if let Some(child) = self.child.as_mut() {
            let _ = child.kill();
            let _ = child.wait();
        }
    }
}

struct Connection {
    reader: BufReader<TcpStream>,
    writer: BufWriter<TcpStream>,
}

impl Connection {
    fn round_trip(&mut self, request: &str) -> Value {
        writeln!(self.writer, "{request}").expect("send request");
        self.writer.flush().expect("flush request");
        let mut line = String::new();
        self.reader.read_line(&mut line).expect("read response");
        jsonio::parse(&line).unwrap_or_else(|e| panic!("bad response {line:?}: {e}"))
    }
}

fn rows_to_json(rows: &[Vec<f64>]) -> String {
    Value::Array(
        rows.iter()
            .map(|row| Value::Array(row.iter().map(|&p| Value::Float(p)).collect()))
            .collect(),
    )
    .to_string()
}

fn random_rows(rng: &mut StdRng, devices: usize, cells: usize) -> Vec<Vec<f64>> {
    (0..devices)
        .map(|_| {
            let raw: Vec<f64> = (0..cells).map(|_| rng.gen::<f64>() + 0.01).collect();
            let total: f64 = raw.iter().sum();
            raw.into_iter().map(|p| p / total).collect()
        })
        .collect()
}

/// observe → plan_devices over real TCP: profiles are addressable by
/// name, and a profile update between two identical requests bumps the
/// version and forces a fresh plan — the cache can never serve a plan
/// built from an older profile.
#[test]
fn observe_then_plan_devices_over_tcp() {
    let server = Server::spawn();
    let mut conn = server.connect();

    // Stream a movement history for two devices: "a" cycles through
    // the cells, "b" camps in cell 1.
    for t in 0..40u32 {
        let request = format!(
            r#"{{"cmd": "observe", "cells": 4, "sightings": [{{"device": "a", "cell": {}, "time": {t}.0}}, {{"device": "b", "cell": 1, "time": {t}.0}}]}}"#,
            t % 4
        );
        let response = conn.round_trip(&request);
        assert_eq!(
            response.get("ok").and_then(Value::as_bool),
            Some(true),
            "{response}"
        );
        assert_eq!(response.get("ingested").and_then(Value::as_u64), Some(2));
    }
    let stats = conn.round_trip(r#"{"cmd": "profile_stats"}"#);
    let profiles = stats.get("profiles").expect("profiles payload");
    assert_eq!(profiles.get("devices").and_then(Value::as_u64), Some(2));
    assert_eq!(profiles.get("sightings").and_then(Value::as_u64), Some(80));

    // Plan for the named devices, twice: the second identical request
    // must be served from the cache with the same versions.
    let plan_req = r#"{"cmd": "plan_devices", "id": 1, "devices": ["a", "b"], "delay": 2, "estimator": "empirical", "now": 39.0}"#;
    let first = conn.round_trip(plan_req);
    assert_eq!(
        first.get("ok").and_then(Value::as_bool),
        Some(true),
        "{first}"
    );
    assert_eq!(first.get("cached").and_then(Value::as_bool), Some(false));
    let first_versions = first
        .get("profile_versions")
        .and_then(Value::as_array)
        .expect("versions")
        .to_vec();
    assert_eq!(first_versions.len(), 2);
    let covered: usize = first
        .get("strategy")
        .and_then(Value::as_array)
        .expect("strategy")
        .iter()
        .map(|g| g.as_array().expect("group").len())
        .sum();
    assert_eq!(covered, 4, "strategy must partition all cells");
    let second = conn.round_trip(plan_req);
    assert_eq!(second.get("cached").and_then(Value::as_bool), Some(true));
    assert_eq!(
        second.get("profile_versions").and_then(Value::as_array),
        Some(&first_versions[..])
    );

    // One more sighting for "b": its version bumps, and the same
    // request is re-planned — a stale cached strategy is unservable.
    let bump = conn.round_trip(
        r#"{"cmd": "observe", "cells": 4, "sightings": [{"device": "b", "cell": 2, "time": 40.0}]}"#,
    );
    assert_eq!(bump.get("ok").and_then(Value::as_bool), Some(true));
    let third = conn.round_trip(plan_req);
    assert_eq!(
        third.get("cached").and_then(Value::as_bool),
        Some(false),
        "profile update must invalidate the cached plan: {third}"
    );
    let third_versions = third
        .get("profile_versions")
        .and_then(Value::as_array)
        .expect("versions");
    assert_eq!(third_versions[0], first_versions[0], "a unchanged");
    assert!(
        third_versions[1].as_u64() > first_versions[1].as_u64(),
        "b's version must increase"
    );

    // The metrics registry saw the ingest.
    let metrics = conn.round_trip(r#"{"cmd": "metrics"}"#);
    let metrics = metrics.get("metrics").expect("metrics payload");
    assert_eq!(
        metrics.get("sightings_ingested").and_then(Value::as_u64),
        Some(81)
    );
}

#[test]
fn thousand_concurrent_requests_over_tcp() {
    let server = Arc::new(Server::spawn());

    // A fixed pool of instances that every client repeats (these must
    // hit the cache and must all be served the same strategy), plus
    // per-client fresh instances (these mostly miss).
    let mut rng = StdRng::seed_from_u64(0xC0FFEE);
    let pool: Vec<String> = (0..POOL_SIZE)
        .map(|_| rows_to_json(&random_rows(&mut rng, 2, 6)))
        .collect();
    let pool = Arc::new(pool);

    let clients: Vec<_> = (0..CLIENT_THREADS)
        .map(|t| {
            let server = Arc::clone(&server);
            let pool = Arc::clone(&pool);
            std::thread::spawn(move || {
                let mut rng = StdRng::seed_from_u64(1000 + t as u64);
                let mut conn = server.connect();
                // (pool index, strategy JSON, ep, cached) per pool hit.
                let mut observed: Vec<(usize, String, f64, bool)> = Vec::new();
                for i in 0..REQUESTS_PER_CLIENT {
                    let use_pool = i % 2 == 0;
                    let (pool_idx, instance) = if use_pool {
                        let idx = rng.gen_range(0..POOL_SIZE);
                        (Some(idx), pool[idx].clone())
                    } else {
                        (None, rows_to_json(&random_rows(&mut rng, 2, 6)))
                    };
                    let id = t * REQUESTS_PER_CLIENT + i;
                    let request = format!(r#"{{"id": {id}, "instance": {instance}, "delay": 3}}"#);
                    let response = conn.round_trip(&request);
                    assert_eq!(
                        response.get("ok").and_then(Value::as_bool),
                        Some(true),
                        "request {id} failed: {response}"
                    );
                    assert_eq!(response.get("id").and_then(Value::as_usize), Some(id));
                    let strategy = response.get("strategy").expect("strategy");
                    let cells: usize = strategy
                        .as_array()
                        .expect("strategy array")
                        .iter()
                        .map(|g| g.as_array().expect("group array").len())
                        .sum();
                    assert_eq!(cells, 6, "strategy must partition all cells");
                    let ep = response.get("ep").and_then(Value::as_f64).expect("ep");
                    assert!(ep > 0.0 && ep <= 12.0, "EP {ep} out of range");
                    if let Some(idx) = pool_idx {
                        observed.push((
                            idx,
                            strategy.to_string(),
                            ep,
                            response.get("cached").and_then(Value::as_bool) == Some(true),
                        ));
                    }
                }
                observed
            })
        })
        .collect();

    let mut by_pool_idx: Vec<Vec<(String, f64, bool)>> = vec![Vec::new(); POOL_SIZE];
    let mut completed = 0usize;
    for client in clients {
        let observed = client.join().expect("client thread");
        completed += REQUESTS_PER_CLIENT;
        for (idx, strategy, ep, cached) in observed {
            by_pool_idx[idx].push((strategy, ep, cached));
        }
    }
    assert!(completed >= 1000, "only {completed} requests completed");

    // Identical fingerprints ⇒ byte-identical strategies and EPs,
    // whether the response was cached, coalesced, or freshly planned.
    let mut cached_seen = 0usize;
    for (idx, responses) in by_pool_idx.iter().enumerate() {
        assert!(!responses.is_empty(), "pool instance {idx} never requested");
        let (baseline_strategy, baseline_ep, _) = &responses[0];
        for (strategy, ep, cached) in responses {
            assert_eq!(
                strategy, baseline_strategy,
                "pool instance {idx}: cached and fresh strategies differ"
            );
            assert!(
                (ep - baseline_ep).abs() < f64::EPSILON,
                "pool instance {idx}: EP drifted: {ep} vs {baseline_ep}"
            );
            cached_seen += usize::from(*cached);
        }
    }
    assert!(cached_seen > 0, "repeated instances never hit the cache");

    // The metrics registry agrees.
    let mut conn = server.connect();
    let metrics_response = conn.round_trip(r#"{"cmd": "metrics"}"#);
    let metrics = metrics_response.get("metrics").expect("metrics payload");
    let requests = metrics.get("requests").and_then(Value::as_u64).unwrap();
    assert!(requests >= 1024, "server saw only {requests} requests");
    let hits = metrics.get("cache_hits").and_then(Value::as_u64).unwrap();
    let misses = metrics.get("cache_misses").and_then(Value::as_u64).unwrap();
    assert!(hits > 0, "cache hit rate must be nonzero");
    assert_eq!(hits + misses, requests, "every request hits or misses");
    assert!(
        metrics
            .get("tier_latency")
            .and_then(|t| t.get("exact"))
            .and_then(|t| t.get("count"))
            .and_then(Value::as_u64)
            .unwrap_or(0)
            > 0,
        "2×6 instances should be planned by the exact tier: {metrics}"
    );

    // Shut the server down over the wire and collect the final
    // metrics dump from stdout (--metrics-json).
    let stop = conn.round_trip(r#"{"cmd": "shutdown"}"#);
    assert_eq!(stop.get("stopping").and_then(Value::as_bool), Some(true));
    drop(conn);
    let mut server = Arc::into_inner(server).expect("all clients finished");
    let mut child = server.child.take().expect("child still running");
    // The metrics dump is tiny, so it fits the pipe buffer and the
    // child can exit before we read it.
    let status = child.wait().expect("server exit");
    assert!(status.success(), "server exited with {status}");
    let stdout = child.stdout.take().expect("child stdout");
    let dump: Vec<String> = BufReader::new(stdout)
        .lines()
        .map(|l| l.expect("read metrics dump"))
        .collect();
    let final_metrics = jsonio::parse(dump.last().expect("metrics line")).unwrap();
    assert!(
        final_metrics
            .get("requests")
            .and_then(Value::as_u64)
            .unwrap()
            >= 1024
    );
}
