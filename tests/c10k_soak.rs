//! C10k soak: hold thousands of open connections against the real
//! `pager-serve` binary while a sample of them carries live planning
//! traffic, and prove the event-loop transport's scaling claim — the
//! server's thread count stays O(event-loops + workers), independent
//! of the connection count.
//!
//! The connection count defaults to a CI-friendly 500 and scales to a
//! true 10k run with `SOAK_CONNS=10000 cargo test --test c10k_soak`
//! (needs `ulimit -n` headroom on both sides: one fd per connection in
//! this process and one in the server).

use std::io::{BufRead, BufReader, BufWriter, Write};
use std::net::TcpStream;
use std::process::{Child, Command, Stdio};
use std::time::Duration;

use jsonio::Value;

/// Event loops the soak server runs; the thread bound is relative to
/// this, not to the connection count.
const EVENT_LOOPS: usize = 2;
const WORKERS: usize = 2;

fn soak_conns() -> usize {
    std::env::var("SOAK_CONNS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(500)
}

struct Server {
    child: Child,
    port: u16,
}

impl Server {
    fn spawn() -> Server {
        let mut child = Command::new(env!("CARGO_BIN_EXE_pager-serve"))
            .args([
                "--addr",
                "127.0.0.1:0",
                "--event-loops",
                &EVENT_LOOPS.to_string(),
                "--workers",
                &WORKERS.to_string(),
            ])
            .stdout(Stdio::piped())
            .stderr(Stdio::piped())
            .spawn()
            .expect("spawn pager-serve");
        let stderr = child.stderr.take().expect("child stderr");
        let mut lines = BufReader::new(stderr).lines();
        let banner = lines
            .next()
            .expect("server banner")
            .expect("read server banner");
        let port: u16 = banner
            .rsplit(':')
            .next()
            .and_then(|p| p.trim().parse().ok())
            .unwrap_or_else(|| panic!("no port in banner {banner:?}"));
        std::thread::spawn(move || for _ in lines {});
        Server { child, port }
    }

    fn connect(&self) -> TcpStream {
        let stream = TcpStream::connect(("127.0.0.1", self.port)).expect("connect");
        stream
            .set_read_timeout(Some(Duration::from_secs(60)))
            .expect("read timeout");
        stream
    }

    /// The server's current OS thread count, from /proc.
    fn thread_count(&self) -> usize {
        let status = std::fs::read_to_string(format!("/proc/{}/status", self.child.id()))
            .expect("read /proc status");
        status
            .lines()
            .find_map(|line| line.strip_prefix("Threads:"))
            .and_then(|v| v.trim().parse().ok())
            .expect("Threads: line in /proc status")
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        let _ = self.child.kill();
        let _ = self.child.wait();
    }
}

fn round_trip(stream: &TcpStream, request: &str) -> Value {
    let mut writer = BufWriter::new(stream);
    writeln!(writer, "{request}").expect("send request");
    writer.flush().expect("flush request");
    drop(writer);
    let mut reader = BufReader::new(stream);
    let mut line = String::new();
    reader.read_line(&mut line).expect("read response");
    jsonio::parse(&line).unwrap_or_else(|e| panic!("bad response {line:?}: {e}"))
}

#[test]
fn thousands_of_idle_connections_with_live_traffic() {
    let conns = soak_conns();
    let server = Server::spawn();

    // Open the whole soak population and keep every socket alive.
    let mut sockets = Vec::with_capacity(conns);
    for _ in 0..conns {
        sockets.push(server.connect());
    }

    // Live traffic on a spread-out sample while the rest sit idle:
    // pings and genuine plan requests (cache misses go through the
    // worker pool and come back through the loop's waker).
    for (i, stream) in sockets.iter().enumerate().step_by(50) {
        let pong = round_trip(stream, r#"{"cmd": "ping"}"#);
        assert_eq!(
            pong.get("pong").and_then(Value::as_bool),
            Some(true),
            "ping on conn {i}: {pong}"
        );
        let request = format!(
            r#"{{"id": {i}, "instance": [[0.4, 0.3, 0.2, 0.1]], "delay": 2, "deadline_ms": 30000}}"#
        );
        let response = round_trip(stream, &request);
        assert_eq!(
            response.get("ok").and_then(Value::as_bool),
            Some(true),
            "plan on conn {i}: {response}"
        );
        assert_eq!(response.get("id").and_then(Value::as_i64), Some(i as i64));
    }

    // The scaling claim: threads track loops + workers, never the
    // connection count. Main thread + loops + workers, plus slack for
    // runtime helpers — nowhere near `conns`.
    let threads = server.thread_count();
    let bound = EVENT_LOOPS + WORKERS + 8;
    assert!(
        threads <= bound,
        "server runs {threads} threads for {conns} connections (bound {bound})"
    );

    // The server agrees it is holding the whole population.
    let metrics_conn = server.connect();
    let metrics = round_trip(&metrics_conn, r#"{"cmd": "metrics"}"#);
    let metrics = metrics.get("metrics").expect("metrics payload");
    let open = metrics
        .get("open_connections")
        .and_then(Value::as_u64)
        .expect("open_connections metric");
    assert!(
        open >= conns as u64,
        "open_connections {open} < soak population {conns}"
    );
    let accepted = metrics
        .get("accepted_connections")
        .and_then(Value::as_u64)
        .expect("accepted_connections metric");
    assert!(accepted >= conns as u64);
    let wakeups = metrics
        .get("loop_wakeups")
        .and_then(Value::as_u64)
        .expect("loop_wakeups metric");
    assert!(wakeups > 0, "event loops never woke up?");

    // Closing the population is noticed: the gauge falls back down.
    drop(sockets);
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let metrics = round_trip(&metrics_conn, r#"{"cmd": "metrics"}"#);
        let open = metrics
            .get("metrics")
            .and_then(|m| m.get("open_connections"))
            .and_then(Value::as_u64)
            .expect("open_connections metric");
        // Only the metrics connection itself (and any not-yet-reaped
        // closes) should remain.
        if open <= 2 {
            break;
        }
        assert!(
            std::time::Instant::now() < deadline,
            "open_connections stuck at {open} after the population closed"
        );
        std::thread::sleep(Duration::from_millis(50));
    }

    let stop = round_trip(&metrics_conn, r#"{"cmd": "shutdown"}"#);
    assert_eq!(stop.get("stopping").and_then(Value::as_bool), Some(true));
}
