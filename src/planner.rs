//! Bridges the paper's optimiser into the [`cellnet`] simulator.
//!
//! [`GreedyPlanner`] implements [`cellnet::PagingPlanner`] with the
//! `e/(e−1)`-approximation of Section 4 (Fig. 1), so a simulated
//! system pages location areas near-optimally instead of blanket
//! paging them.
//!
//! The [`cellnet::PagingPlanner`] trait cannot report failure, so its
//! `plan` must produce *some* partition even for degenerate input
//! (rows that are not distributions, a zero delay budget). Rather
//! than hiding that, [`GreedyPlanner::plan_checked`] surfaces the
//! exact problem as a [`DegenerateInput`], and the infallible trait
//! path logs the event to stderr and counts it in
//! [`GreedyPlanner::degenerate_inputs`] before falling back to
//! blanket paging.
//!
//! There is exactly one tier-dispatch surface in the workspace:
//! [`pager_service::planner`], re-exported here. The simulator bridge
//! below routes through it (greedy tier, no deadline) rather than
//! calling the solvers directly, so policy changes in the service
//! planner apply everywhere.

use std::sync::atomic::{AtomicU64, Ordering};

use cellnet::PagingPlanner;
use pager_core::{CancelToken, Delay, Instance};

pub use pager_service::planner::{plan, Plan, Tier, TierPolicy, Variant, RETRY_AFTER_MS};

/// Why a planning request could not be served as asked.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DegenerateInput {
    /// No rows, or rows with no cells: there is nothing to page.
    NoCells,
    /// The rows are not probability distributions (the message is the
    /// validation error from [`Instance::from_rows`]).
    InvalidRows(String),
    /// A delay budget of zero rounds: no strategy can page anything.
    ZeroDelay,
}

impl core::fmt::Display for DegenerateInput {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            DegenerateInput::NoCells => write!(f, "no cells to page"),
            DegenerateInput::InvalidRows(why) => {
                write!(f, "rows are not probability distributions: {why}")
            }
            DegenerateInput::ZeroDelay => write!(f, "delay budget is zero rounds"),
        }
    }
}

impl std::error::Error for DegenerateInput {}

/// Plans per-area paging with the paper's greedy heuristic.
///
/// # Examples
///
/// ```
/// use cellnet::PagingPlanner;
/// use conference_call::planner::GreedyPlanner;
///
/// let planner = GreedyPlanner::default();
/// let rows = vec![vec![0.7, 0.2, 0.1], vec![0.5, 0.3, 0.2]];
/// let groups = planner.plan(&rows, 2);
/// assert_eq!(groups.len(), 2);
/// // The heaviest cell is paged first.
/// assert!(groups[0].contains(&0));
/// assert_eq!(planner.degenerate_inputs(), 0);
/// ```
#[derive(Debug, Default)]
pub struct GreedyPlanner {
    degenerate: AtomicU64,
}

impl GreedyPlanner {
    /// Plans like [`PagingPlanner::plan`] but reports degenerate input
    /// instead of silently papering over it.
    ///
    /// # Errors
    ///
    /// [`DegenerateInput`] when the rows are empty or invalid, or the
    /// delay budget is zero.
    pub fn plan_checked(
        &self,
        rows: &[Vec<f64>],
        delay: usize,
    ) -> Result<Vec<Vec<usize>>, DegenerateInput> {
        let c = rows.first().map_or(0, Vec::len);
        if c == 0 {
            return Err(DegenerateInput::NoCells);
        }
        if delay == 0 {
            return Err(DegenerateInput::ZeroDelay);
        }
        let instance = Instance::from_rows(rows.to_vec())
            .map_err(|e| DegenerateInput::InvalidRows(e.to_string()))?;
        let delay = Delay::new(delay).map_err(|_| DegenerateInput::ZeroDelay)?;
        let planned = plan(
            &instance,
            delay,
            Variant::Greedy,
            &TierPolicy::default(),
            &CancelToken::never(),
        )
        .map_err(|e| DegenerateInput::InvalidRows(e.to_string()))?;
        Ok(planned.strategy.groups().to_vec())
    }

    /// How many trait-path `plan` calls hit degenerate input and fell
    /// back (blanket paging, or an empty plan for empty input).
    #[must_use]
    pub fn degenerate_inputs(&self) -> u64 {
        // lint:allow(atomics-ordering-audit): monotone stats counter, no handoff
        self.degenerate.load(Ordering::Relaxed)
    }
}

impl PagingPlanner for GreedyPlanner {
    fn plan(&self, rows: &[Vec<f64>], delay: usize) -> Vec<Vec<usize>> {
        match self.plan_checked(rows, delay) {
            Ok(groups) => groups,
            Err(why) => {
                // lint:allow(atomics-ordering-audit): monotone stats counter, no handoff
                self.degenerate.fetch_add(1, Ordering::Relaxed);
                eprintln!("GreedyPlanner: degenerate input ({why}); falling back");
                let c = rows.first().map_or(0, Vec::len);
                if c == 0 {
                    Vec::new()
                } else {
                    vec![(0..c).collect()]
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_the_cells() {
        let rows = vec![vec![0.4, 0.3, 0.2, 0.1]];
        let planner = GreedyPlanner::default();
        let groups = planner.plan(&rows, 3);
        let mut all: Vec<usize> = groups.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3]);
        assert_eq!(groups.len(), 3);
        assert_eq!(planner.degenerate_inputs(), 0);
    }

    #[test]
    fn invalid_rows_are_reported_and_fall_back_to_blanket() {
        let rows = vec![vec![0.4, 0.4]]; // does not sum to 1
        let planner = GreedyPlanner::default();
        let err = planner.plan_checked(&rows, 2).unwrap_err();
        assert!(matches!(err, DegenerateInput::InvalidRows(_)), "{err}");
        // The infallible trait path still serves blanket paging, but
        // the event is now observable.
        let groups = planner.plan(&rows, 2);
        assert_eq!(groups, vec![vec![0, 1]]);
        assert_eq!(planner.degenerate_inputs(), 1);
    }

    #[test]
    fn zero_delay_is_reported_and_falls_back_to_blanket() {
        let rows = vec![vec![0.6, 0.4]];
        let planner = GreedyPlanner::default();
        assert_eq!(
            planner.plan_checked(&rows, 0).unwrap_err(),
            DegenerateInput::ZeroDelay
        );
        let groups = planner.plan(&rows, 0);
        assert_eq!(groups, vec![vec![0, 1]]);
        assert_eq!(planner.degenerate_inputs(), 1);
    }

    #[test]
    fn empty_rows_are_reported() {
        let planner = GreedyPlanner::default();
        assert_eq!(
            planner.plan_checked(&[], 2).unwrap_err(),
            DegenerateInput::NoCells
        );
        assert!(planner.plan(&[], 2).is_empty());
        assert_eq!(planner.degenerate_inputs(), 1);
    }

    #[test]
    fn single_round_is_blanket() {
        let rows = vec![vec![0.6, 0.4]];
        let planner = GreedyPlanner::default();
        let groups = planner.plan(&rows, 1);
        assert_eq!(groups.len(), 1);
        assert_eq!(planner.degenerate_inputs(), 0, "one round is valid");
    }
}
