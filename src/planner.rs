//! Bridges the paper's optimiser into the [`cellnet`] simulator.
//!
//! [`GreedyPlanner`] implements [`cellnet::PagingPlanner`] with the
//! `e/(e−1)`-approximation of Section 4 (Fig. 1), so a simulated
//! system pages location areas near-optimally instead of blanket
//! paging them.

use cellnet::PagingPlanner;
use pager_core::{greedy_strategy, Delay, Instance};

/// Plans per-area paging with the paper's greedy heuristic.
///
/// # Examples
///
/// ```
/// use cellnet::PagingPlanner;
/// use conference_call::planner::GreedyPlanner;
///
/// let rows = vec![vec![0.7, 0.2, 0.1], vec![0.5, 0.3, 0.2]];
/// let groups = GreedyPlanner.plan(&rows, 2);
/// assert_eq!(groups.len(), 2);
/// // The heaviest cell is paged first.
/// assert!(groups[0].contains(&0));
/// ```
#[derive(Debug, Clone, Copy, Default)]
pub struct GreedyPlanner;

impl PagingPlanner for GreedyPlanner {
    fn plan(&self, rows: &[Vec<f64>], delay: usize) -> Vec<Vec<usize>> {
        let c = rows.first().map_or(0, Vec::len);
        if c == 0 {
            return Vec::new();
        }
        let Ok(instance) = Instance::from_rows(rows.to_vec()) else {
            // Degenerate estimate: fall back to blanket paging.
            return vec![(0..c).collect()];
        };
        let Ok(delay) = Delay::new(delay.max(1)) else {
            return vec![(0..c).collect()];
        };
        let strategy = greedy_strategy(&instance, delay);
        strategy.groups().to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn partitions_the_cells() {
        let rows = vec![vec![0.4, 0.3, 0.2, 0.1]];
        let groups = GreedyPlanner.plan(&rows, 3);
        let mut all: Vec<usize> = groups.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, vec![0, 1, 2, 3]);
        assert_eq!(groups.len(), 3);
    }

    #[test]
    fn invalid_rows_fall_back_to_blanket() {
        let rows = vec![vec![0.4, 0.4]]; // does not sum to 1
        let groups = GreedyPlanner.plan(&rows, 2);
        assert_eq!(groups, vec![vec![0, 1]]);
    }

    #[test]
    fn single_round_is_blanket() {
        let rows = vec![vec![0.6, 0.4]];
        let groups = GreedyPlanner.plan(&rows, 1);
        assert_eq!(groups.len(), 1);
    }
}
