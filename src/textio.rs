//! Plain-text instance I/O for the CLI and for exchanging instances
//! between tools.
//!
//! The format is one device per line, whitespace-separated cell
//! probabilities; blank lines and `#` comments are ignored. Entries
//! may be decimals (`0.25`) or exact fractions (`2/7`); a file whose
//! entries are all fractions round-trips exactly through
//! [`parse_exact_instance`].
//!
//! ```text
//! # three devices over four cells
//! 0.4 0.3 0.2 0.1
//! 1/4 1/4 1/4 1/4
//! 0.7 0.1 0.1 0.1
//! ```

use pager_core::{ExactInstance, Instance};
use rational::Ratio;

/// Errors parsing an instance from text.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseInstanceError {
    /// The text contained no probability rows.
    Empty,
    /// A token failed to parse as a number or fraction.
    BadToken {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// The rows did not form a valid instance.
    Invalid(String),
}

impl core::fmt::Display for ParseInstanceError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ParseInstanceError::Empty => write!(f, "no probability rows found"),
            ParseInstanceError::BadToken { line, token } => {
                write!(f, "line {line}: cannot parse {token:?} as a probability")
            }
            ParseInstanceError::Invalid(msg) => write!(f, "invalid instance: {msg}"),
        }
    }
}

impl std::error::Error for ParseInstanceError {}

fn parse_rows(text: &str) -> Result<Vec<(usize, Vec<Ratio>)>, ParseInstanceError> {
    let mut rows = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        let body = line.split('#').next().unwrap_or("").trim();
        if body.is_empty() {
            continue;
        }
        let mut row = Vec::new();
        for token in body.split_whitespace() {
            let value: Ratio = token.parse().map_err(|_| ParseInstanceError::BadToken {
                line: idx + 1,
                token: token.to_string(),
            })?;
            row.push(value);
        }
        rows.push((idx + 1, row));
    }
    if rows.is_empty() {
        return Err(ParseInstanceError::Empty);
    }
    Ok(rows)
}

/// Parses an [`Instance`] (f64) from text.
///
/// # Errors
///
/// [`ParseInstanceError`] on malformed text or invalid probabilities.
pub fn parse_instance(text: &str) -> Result<Instance, ParseInstanceError> {
    let rows = parse_rows(text)?;
    let float_rows: Vec<Vec<f64>> = rows
        .into_iter()
        .map(|(_, row)| row.iter().map(Ratio::to_f64).collect())
        .collect();
    Instance::from_rows(float_rows).map_err(|e| ParseInstanceError::Invalid(e.to_string()))
}

/// Parses an [`ExactInstance`] from text — rows must sum to exactly 1,
/// so use fraction entries (`1/3`) or exact decimals (`0.25`).
///
/// # Errors
///
/// [`ParseInstanceError`] on malformed text or rows not summing to 1.
pub fn parse_exact_instance(text: &str) -> Result<ExactInstance, ParseInstanceError> {
    let rows = parse_rows(text)?;
    let exact_rows: Vec<Vec<Ratio>> = rows.into_iter().map(|(_, row)| row).collect();
    ExactInstance::from_rows(exact_rows).map_err(|e| ParseInstanceError::Invalid(e.to_string()))
}

/// Renders an instance back to the text format (decimal probabilities,
/// full `f64` precision).
#[must_use]
pub fn format_instance(instance: &Instance) -> String {
    let mut out = String::new();
    for row in instance.rows() {
        let cells: Vec<String> = row.iter().map(|p| format!("{p}")).collect();
        out.push_str(&cells.join(" "));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_decimals_and_fractions() {
        let text = "# demo\n0.5 0.5\n1/4 3/4\n";
        let inst = parse_instance(text).unwrap();
        assert_eq!(inst.num_devices(), 2);
        assert!((inst.prob(1, 0) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn exact_round_trip() {
        let text = "2/7 5/7\n1/2 1/2\n";
        let exact = parse_exact_instance(text).unwrap();
        assert_eq!(exact.prob(0, 0), &rational::Ratio::from_fraction(2, 7));
    }

    #[test]
    fn reports_bad_tokens_with_line_numbers() {
        let err = parse_instance("0.5 0.5\nfoo 1.0\n").unwrap_err();
        assert_eq!(
            err,
            ParseInstanceError::BadToken {
                line: 2,
                token: "foo".into()
            }
        );
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn rejects_empty_and_invalid() {
        assert_eq!(
            parse_instance("# only comments\n"),
            Err(ParseInstanceError::Empty)
        );
        assert!(matches!(
            parse_instance("0.5 0.4\n"),
            Err(ParseInstanceError::Invalid(_))
        ));
        assert!(matches!(
            parse_exact_instance("0.5 0.4\n"),
            Err(ParseInstanceError::Invalid(_))
        ));
    }

    #[test]
    fn format_round_trips() {
        let inst = Instance::from_rows(vec![vec![0.25, 0.75], vec![0.5, 0.5]]).unwrap();
        let text = format_instance(&inst);
        let back = parse_instance(&text).unwrap();
        assert_eq!(back, inst);
    }
}
