//! # conference-call
//!
//! A production-quality reproduction of **Bar-Noy & Malewicz,
//! “Establishing wireless conference calls under delay constraints”**
//! (PODC 2002; *Journal of Algorithms* 51(2):145–169, 2004).
//!
//! A cellular system has `c` cells and `m` mobile devices whose locations
//! are known only as per-device probability distributions. To establish a
//! conference call the system pages subsets of cells in rounds — at most
//! `d` rounds — until every device has been found, and wants to minimise
//! the expected number of cells paged. This crate re-exports the full
//! workspace:
//!
//! * [`pager`] — the Conference Call problem, the e/(e−1)-approximation
//!   heuristic (Fig. 1 of the paper), optimal solvers, and the adaptive /
//!   bandwidth-limited / yellow-pages / signature extensions;
//! * [`service`] — a concurrent strategy-planning server with a
//!   sharded quantised-fingerprint cache, batch dispatch, and a
//!   JSON-lines wire protocol (the `pager-serve` binary);
//! * [`profiles`] — the online location-profile store feeding the
//!   service: sighting ingest, per-device Laplace / recency / Markov
//!   estimators with staleness decay, versioned concurrent profiles,
//!   and the replay harness closing the sightings→plans loop;
//! * [`hardness`] — the NP-hardness reduction pipeline of Section 3;
//! * [`net`] — a cellular-network simulator grounding the model
//!   (location areas, mobility, distribution estimation, link costs);
//! * [`exact`] — arbitrary-precision rational arithmetic;
//! * [`gen`] — workload generators for the experiments.
//!
//! # Quickstart
//!
//! ```
//! use conference_call::prelude::*;
//!
//! // Three devices roaming over six cells, at most two paging rounds.
//! let instance = Instance::from_rows(vec![
//!     vec![0.40, 0.30, 0.10, 0.10, 0.05, 0.05],
//!     vec![0.25, 0.25, 0.20, 0.10, 0.10, 0.10],
//!     vec![0.50, 0.20, 0.10, 0.10, 0.05, 0.05],
//! ])?;
//! let strategy = greedy_strategy(&instance, Delay::new(2)?);
//! let ep = instance.expected_paging(&strategy)?;
//! assert!(ep < 6.0); // strictly better than blanket paging
//! # Ok::<(), conference_call::pager::Error>(())
//! ```

pub use cellnet as net;
pub use pager_core as pager;
pub use pager_hardness as hardness;
pub use pager_profiles as profiles;
pub use pager_service as service;
pub use rational as exact;
pub use workloads as gen;

pub mod planner;
pub mod textio;

/// Convenience re-exports for the common planning workflow.
pub mod prelude {
    pub use pager_core::{greedy_strategy, single_user_optimal, Delay, Instance, Strategy};
    pub use rational::{BigInt, Ratio};
}
