//! `pager-cluster` — consistent-hash sharded deployment front.
//!
//! ```text
//! USAGE:
//!   pager-cluster --topology FILE [--listen HOST:PORT] [--workers N]
//! ```
//!
//! Reads a static seed topology (see `pager_cluster::topology`),
//! builds the shared consistent-hash ring, and runs the two moving
//! parts of a cluster deployment in one process:
//!
//! - the **router**: terminates client JSON-lines connections on
//!   `--listen` (default `127.0.0.1:7900`) and routes each request by
//!   device key to the owning `pager-serve` node, fanning out and
//!   merging multi-device requests;
//! - the **pump**: heartbeats every node, ships WAL frames from each
//!   shard owner to its ring follower, promotes the follower when the
//!   owner dies, and resyncs + demotes on revival.
//!
//! The process runs until a client sends `{"cmd": "shutdown"}` to the
//! router (which stops the router only — nodes are left running).
//! Cluster events (deaths, promotions, revivals) are logged to
//! stderr as they happen.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use pager_cluster::router::RouterConfig;
use pager_cluster::{serve_router, Cluster, Pump, Topology};

/// Per-operation I/O timeout for node round trips.
const NODE_TIMEOUT: Duration = Duration::from_secs(5);

struct Options {
    topology: std::path::PathBuf,
    listen: String,
    workers: usize,
}

fn usage() -> ExitCode {
    eprintln!("usage: pager-cluster --topology FILE [--listen HOST:PORT] [--workers N]");
    ExitCode::from(2)
}

fn parse_args(mut args: std::env::Args) -> Result<Options, String> {
    let _ = args.next();
    let mut topology: Option<std::path::PathBuf> = None;
    let mut listen = "127.0.0.1:7900".to_string();
    let mut workers = RouterConfig::default().workers;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--topology" => {
                topology = Some(args.next().ok_or("--topology needs a file")?.into());
            }
            "--listen" => listen = args.next().ok_or("--listen needs HOST:PORT")?,
            "--workers" => {
                workers = args
                    .next()
                    .and_then(|v| v.parse::<usize>().ok())
                    .filter(|&n| n > 0)
                    .ok_or("--workers needs a positive integer")?;
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(Options {
        topology: topology.ok_or("--topology is required")?,
        listen,
        workers,
    })
}

fn main() -> ExitCode {
    let opts = match parse_args(std::env::args()) {
        Ok(opts) => opts,
        Err(message) => {
            eprintln!("pager-cluster: {message}");
            return usage();
        }
    };
    let topology = match Topology::from_file(&opts.topology) {
        Ok(topology) => topology,
        Err(message) => {
            eprintln!("pager-cluster: {message}");
            return ExitCode::FAILURE;
        }
    };
    let members = topology.nodes.len();
    let cluster = Arc::new(Cluster::new(topology, NODE_TIMEOUT));
    let mut pump = Pump::start(Arc::clone(&cluster));
    let mut router = match serve_router(
        Arc::clone(&cluster),
        opts.listen.as_str(),
        &RouterConfig {
            workers: opts.workers,
        },
    ) {
        Ok(router) => router,
        Err(e) => {
            eprintln!("pager-cluster: cannot bind {}: {e}", opts.listen);
            return ExitCode::FAILURE;
        }
    };
    eprintln!(
        "pager-cluster: listening on {} ({members} nodes)",
        router.local_addr()
    );
    router.wait();
    eprintln!("pager-cluster: shutting down");
    pump.stop();
    ExitCode::SUCCESS
}
