//! `pager` — command-line paging-strategy planner.
//!
//! ```text
//! USAGE:
//!   pager <instance-file> [--delay D] [--algorithm ALGO] [--bandwidth B]
//!         [--signature K] [--simulate TRIALS] [--evaluate "0,1 | 2,3"] [--exact]
//!
//! ALGO: greedy (default) | fig1 | single | optimal | types | adaptive
//! ```
//!
//! The instance file holds one device per line, whitespace-separated
//! probabilities (decimals or fractions such as `2/7`); `#` starts a
//! comment. See `conference_call::textio` for the format.

use conference_call::pager::adaptive::adaptive_expected_paging;
use conference_call::pager::bandwidth::greedy_strategy_bounded;
use conference_call::pager::signature::greedy_signature;
use conference_call::pager::{
    cell_types, fig1, greedy_strategy_planned, optimal, simulation, single_user_optimal,
};
use conference_call::prelude::*;
use conference_call::textio;
use std::process::ExitCode;

struct Options {
    file: String,
    delay: usize,
    algorithm: String,
    bandwidth: Option<usize>,
    signature: Option<usize>,
    simulate: Option<usize>,
    evaluate: Option<String>,
    exact: bool,
    report: bool,
    compare: bool,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: pager <instance-file> [--delay D] [--algorithm greedy|fig1|single|optimal|types|adaptive] [--bandwidth B] [--signature K] [--simulate TRIALS] [--evaluate SPEC] [--exact] [--report] [--compare]"
    );
    ExitCode::from(2)
}

fn parse_args(mut args: std::env::Args) -> Result<Options, String> {
    let _ = args.next();
    let mut file = None;
    let mut opts = Options {
        file: String::new(),
        delay: 2,
        algorithm: "greedy".into(),
        bandwidth: None,
        signature: None,
        simulate: None,
        evaluate: None,
        exact: false,
        report: false,
        compare: false,
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--delay" => {
                opts.delay = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--delay needs a positive integer")?;
            }
            "--algorithm" => {
                opts.algorithm = args.next().ok_or("--algorithm needs a value")?;
            }
            "--bandwidth" => {
                opts.bandwidth = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--bandwidth needs a positive integer")?,
                );
            }
            "--signature" => {
                opts.signature = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--signature needs a positive integer")?,
                );
            }
            "--simulate" => {
                opts.simulate = Some(
                    args.next()
                        .and_then(|v| v.parse().ok())
                        .ok_or("--simulate needs a trial count")?,
                );
            }
            "--evaluate" => {
                opts.evaluate = Some(args.next().ok_or("--evaluate needs a strategy spec")?);
            }
            "--exact" => opts.exact = true,
            "--report" => opts.report = true,
            "--compare" => opts.compare = true,
            other if file.is_none() && !other.starts_with("--") => {
                file = Some(other.to_string());
            }
            other => return Err(format!("unrecognised argument {other:?}")),
        }
    }
    opts.file = file.ok_or("missing instance file")?;
    Ok(opts)
}

fn run(opts: &Options) -> Result<(), String> {
    let text = std::fs::read_to_string(&opts.file)
        .map_err(|e| format!("cannot read {}: {e}", opts.file))?;
    let instance = textio::parse_instance(&text).map_err(|e| e.to_string())?;
    let delay = Delay::new(opts.delay).map_err(|e| e.to_string())?;
    println!(
        "instance: {} devices x {} cells, delay {}",
        instance.num_devices(),
        instance.num_cells(),
        opts.delay
    );

    if opts.compare {
        println!();
        println!(
            "{:>10} {:>14} {:>30}",
            "algorithm", "expected EP", "strategy"
        );
        let mut rows: Vec<(String, f64, String)> = Vec::new();
        let greedy = greedy_strategy_planned(&instance, delay);
        rows.push((
            "greedy".into(),
            greedy.expected_paging,
            greedy.strategy.to_string(),
        ));
        let f = fig1::approximation(&instance, delay);
        rows.push((
            "fig1".into(),
            f.expected_paging,
            String::from("(same family)"),
        ));
        if instance.num_cells() <= optimal::SUBSET_DP_MAX_CELLS {
            if let Ok(opt) = optimal::optimal_subset_dp(&instance, delay) {
                rows.push((
                    "optimal".into(),
                    opt.expected_paging,
                    opt.strategy.to_string(),
                ));
            }
        }
        if let Ok(types) = cell_types::optimal_by_types(&instance, delay) {
            rows.push((
                "types".into(),
                types.expected_paging,
                types.strategy.to_string(),
            ));
        }
        if let Ok(adaptive) = adaptive_expected_paging(&instance, delay) {
            rows.push((
                "adaptive".into(),
                adaptive,
                String::from("(replans per round)"),
            ));
        }
        for (name, ep, strat) in rows {
            println!("{name:>10} {ep:>14.6} {strat:>30}");
        }
        return Ok(());
    }

    if let Some(spec) = &opts.evaluate {
        let strategy: Strategy = spec
            .parse()
            .map_err(|e| format!("bad strategy spec: {e}"))?;
        let ep = instance
            .expected_paging(&strategy)
            .map_err(|e| e.to_string())?;
        println!("evaluated strategy       : {strategy}");
        println!("expected cells paged     : {ep:.6}");
        if opts.exact {
            let exact_ep = instance
                .to_exact()
                .map_err(|e| e.to_string())?
                .expected_paging(&strategy)
                .map_err(|e| e.to_string())?;
            println!("exact expected paging    : {exact_ep}");
        }
        return Ok(());
    }

    if let Some(k) = opts.signature {
        let plan = greedy_signature(&instance, delay, k).map_err(|e| e.to_string())?;
        println!("signature(k={k}) strategy : {}", plan.strategy);
        println!("expected cells paged     : {:.6}", plan.expected_paging);
        return Ok(());
    }

    let plan = match opts.algorithm.as_str() {
        "greedy" => match opts.bandwidth {
            Some(b) => greedy_strategy_bounded(&instance, delay, b).map_err(|e| e.to_string())?,
            None => greedy_strategy_planned(&instance, delay),
        },
        "fig1" => {
            let out = fig1::approximation(&instance, delay);
            let strategy = out.to_strategy().map_err(|e| e.to_string())?;
            conference_call::pager::PlannedStrategy {
                expected_paging: out.expected_paging,
                strategy,
            }
        }
        "single" => single_user_optimal(&instance, delay).map_err(|e| e.to_string())?,
        "optimal" => optimal::optimal_subset_dp(&instance, delay).map_err(|e| e.to_string())?,
        "types" => cell_types::optimal_by_types(&instance, delay).map_err(|e| e.to_string())?,
        "adaptive" => {
            let ep = adaptive_expected_paging(&instance, delay).map_err(|e| e.to_string())?;
            println!("adaptive expected cells paged: {ep:.6}");
            println!("(adaptive strategies have no fixed group list; the first");
            println!(" round matches the greedy plan and later rounds replan)");
            return Ok(());
        }
        other => return Err(format!("unknown algorithm {other:?}")),
    };

    println!(
        "strategy ({} rounds)     : {}",
        plan.strategy.rounds(),
        plan.strategy
    );
    println!("expected cells paged     : {:.6}", plan.expected_paging);
    println!(
        "blanket paging baseline  : {:.6}",
        instance.num_cells() as f64
    );

    if opts.report {
        let report = conference_call::pager::analysis::analyze(&instance, &plan.strategy)
            .map_err(|e| e.to_string())?;
        println!();
        print!("{}", report.to_table());
    }

    if opts.exact {
        let exact = instance.to_exact().map_err(|e| e.to_string())?;
        let ep = exact
            .expected_paging(&plan.strategy)
            .map_err(|e| e.to_string())?;
        println!("exact expected paging    : {ep}");
    }
    if let Some(trials) = opts.simulate {
        let report = simulation::simulate(&instance, &plan.strategy, trials, 2002)
            .map_err(|e| e.to_string())?;
        println!(
            "simulated ({} trials)  : {:.6} (std dev {:.4})",
            report.trials, report.mean_cells_paged, report.std_dev
        );
    }
    Ok(())
}

fn main() -> ExitCode {
    let opts = match parse_args(std::env::args()) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("error: {e}");
            return usage();
        }
    };
    match run(&opts) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
