//! `pager-serve` — the concurrent strategy-planning server.
//!
//! ```text
//! USAGE:
//!   pager-serve [--addr HOST:PORT] [--stdio] [--workers N] [--shards N]
//!               [--capacity N] [--grid G] [--metrics-json]
//! ```
//!
//! Speaks the `pager_service::proto` JSON-lines protocol: one request
//! per line, one response line per request. By default it listens on
//! `127.0.0.1:7878`; with `--stdio` it serves a single session over
//! stdin/stdout instead (handy for tests and pipelines). In TCP mode
//! the process runs until a client sends `{"cmd": "shutdown"}`. With
//! `--metrics-json` the final metrics registry is dumped to stdout as
//! one JSON object on exit.

use std::process::ExitCode;
use std::sync::Arc;

use conference_call::service::{serve_lines, serve_tcp, PagerService, ServiceConfig};

struct Options {
    addr: String,
    stdio: bool,
    metrics_json: bool,
    config: ServiceConfig,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: pager-serve [--addr HOST:PORT] [--stdio] [--workers N] [--shards N] [--capacity N] [--grid G] [--metrics-json]"
    );
    ExitCode::from(2)
}

fn parse_args(mut args: std::env::Args) -> Result<Options, String> {
    let _ = args.next();
    let mut opts = Options {
        addr: "127.0.0.1:7878".into(),
        stdio: false,
        metrics_json: false,
        config: ServiceConfig::default(),
    };
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => opts.addr = args.next().ok_or("--addr needs HOST:PORT")?,
            "--stdio" => opts.stdio = true,
            "--metrics-json" => opts.metrics_json = true,
            "--workers" => {
                opts.config.workers = parse_positive(args.next(), "--workers")?;
            }
            "--shards" => {
                opts.config.shards = parse_positive(args.next(), "--shards")?;
            }
            "--capacity" => {
                opts.config.capacity = parse_positive(args.next(), "--capacity")?;
            }
            "--grid" => {
                let grid: usize = parse_positive(args.next(), "--grid")?;
                opts.config.grid =
                    u32::try_from(grid).map_err(|_| "--grid is too large".to_string())?;
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(opts)
}

fn parse_positive(value: Option<String>, flag: &str) -> Result<usize, String> {
    value
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .ok_or_else(|| format!("{flag} needs a positive integer"))
}

fn main() -> ExitCode {
    let opts = match parse_args(std::env::args()) {
        Ok(opts) => opts,
        Err(message) => {
            eprintln!("pager-serve: {message}");
            return usage();
        }
    };
    let service = match PagerService::try_new(opts.config) {
        Ok(service) => Arc::new(service),
        Err(e) => {
            eprintln!("pager-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    if opts.stdio {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        if let Err(e) = serve_lines(&service, stdin.lock(), stdout.lock()) {
            eprintln!("pager-serve: I/O error: {e}");
            return ExitCode::FAILURE;
        }
    } else {
        let mut handle = match serve_tcp(Arc::clone(&service), opts.addr.as_str()) {
            Ok(handle) => handle,
            Err(e) => {
                eprintln!("pager-serve: cannot bind {}: {e}", opts.addr);
                return ExitCode::FAILURE;
            }
        };
        eprintln!("pager-serve: listening on {}", handle.local_addr());
        handle.join();
        eprintln!("pager-serve: shutting down");
    }
    service.shutdown();
    if opts.metrics_json {
        println!("{}", service.metrics().to_json());
    }
    ExitCode::SUCCESS
}
