//! `pager-serve` — the concurrent strategy-planning server.
//!
//! ```text
//! USAGE:
//!   pager-serve [--addr HOST:PORT] [--stdio] [--event-loops N]
//!               [--workers N] [--shards N] [--capacity N] [--grid G]
//!               [--queue-depth N] [--deadline-ms MS] [--drain-ms MS]
//!               [--metrics-json] [--data-dir DIR] [--node-id NAME]
//!               [--fsync always|never|interval:N] [--checkpoint-every N]
//! ```
//!
//! Speaks the `pager_service::proto` JSON-lines protocol: one request
//! per line, one response line per request. By default it listens on
//! `127.0.0.1:7878`; with `--stdio` it serves a single session over
//! stdin/stdout instead (handy for tests and pipelines). In TCP mode
//! the process runs until a client sends `{"cmd": "shutdown"}`, then
//! *drains*: it waits up to `--drain-ms` (default 5000) for requests
//! already being handled to finish before exiting, so an orderly
//! shutdown drops nothing that was admitted.
//!
//! TCP connections are served by `--event-loops` epoll event-loop
//! threads (default: one per core), each with its own `SO_REUSEPORT`
//! listener; solver work still runs on the `--workers` pool.
//!
//! `--queue-depth` bounds the planning admission queue (excess load is
//! shed with `"code": "overloaded"`); `--deadline-ms` sets the default
//! per-request deadline budget for requests that do not carry their
//! own `"deadline_ms"` field (`0` disables the default). With
//! `--metrics-json` the final metrics registry is dumped to stdout as
//! one JSON object on exit.
//!
//! With `--data-dir` the profile store is crash-safe: startup replays
//! the newest snapshot plus its write-ahead log (reporting records
//! recovered and torn-tail bytes truncated), every acked `observe` is
//! WAL-appended first (fsynced per `--fsync`, default `always`), and a
//! snapshot is rotated every `--checkpoint-every` sightings (default
//! 10000). If the data disk fails mid-run the server degrades instead
//! of crashing: observes answer `"code": "degraded"` while planning
//! keeps serving from the in-memory profiles.

use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use conference_call::service::{
    default_event_loops, serve_lines, serve_tcp_with, DurabilityOptions, PagerService,
    ServiceConfig,
};
use pager_profiles::FsyncPolicy;

struct Options {
    addr: String,
    stdio: bool,
    metrics_json: bool,
    drain: Duration,
    event_loops: usize,
    config: ServiceConfig,
}

fn usage() -> ExitCode {
    eprintln!(
        "usage: pager-serve [--addr HOST:PORT] [--stdio] [--event-loops N] [--workers N] [--shards N] [--capacity N] [--grid G] [--queue-depth N] [--deadline-ms MS] [--drain-ms MS] [--metrics-json] [--data-dir DIR] [--node-id NAME] [--fsync always|never|interval:N] [--checkpoint-every N]"
    );
    ExitCode::from(2)
}

fn parse_args(mut args: std::env::Args) -> Result<Options, String> {
    let _ = args.next();
    let mut opts = Options {
        addr: "127.0.0.1:7878".into(),
        stdio: false,
        metrics_json: false,
        drain: Duration::from_millis(5000),
        event_loops: default_event_loops(),
        config: ServiceConfig::default(),
    };
    let mut fsync = FsyncPolicy::Always;
    let mut checkpoint_every = 10_000u64;
    let mut data_dir: Option<std::path::PathBuf> = None;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => opts.addr = args.next().ok_or("--addr needs HOST:PORT")?,
            "--stdio" => opts.stdio = true,
            "--metrics-json" => opts.metrics_json = true,
            "--event-loops" => {
                opts.event_loops = parse_positive(args.next(), "--event-loops")?;
            }
            "--workers" => {
                opts.config.workers = parse_positive(args.next(), "--workers")?;
            }
            "--shards" => {
                opts.config.shards = parse_positive(args.next(), "--shards")?;
            }
            "--capacity" => {
                opts.config.capacity = parse_positive(args.next(), "--capacity")?;
            }
            "--grid" => {
                let grid: usize = parse_positive(args.next(), "--grid")?;
                opts.config.grid =
                    u32::try_from(grid).map_err(|_| "--grid is too large".to_string())?;
            }
            "--queue-depth" => {
                opts.config.queue_depth = parse_positive(args.next(), "--queue-depth")?;
            }
            "--deadline-ms" => {
                // 0 means "no default deadline": requests without a
                // deadline_ms field get an unbounded budget.
                let ms = args
                    .next()
                    .and_then(|v| v.parse::<u64>().ok())
                    .ok_or("--deadline-ms needs a non-negative integer")?;
                opts.config.default_deadline_ms = (ms > 0).then_some(ms);
            }
            "--data-dir" => {
                data_dir = Some(args.next().ok_or("--data-dir needs a directory")?.into());
            }
            "--node-id" => {
                opts.config.node_id = Some(args.next().ok_or("--node-id needs a name")?);
            }
            "--fsync" => {
                let policy = args.next().ok_or("--fsync needs a policy")?;
                fsync = FsyncPolicy::parse(&policy)?;
            }
            "--checkpoint-every" => {
                // 0 disables count-triggered checkpoints.
                checkpoint_every = args
                    .next()
                    .and_then(|v| v.parse::<u64>().ok())
                    .ok_or("--checkpoint-every needs a non-negative integer")?;
            }
            "--drain-ms" => {
                let ms = args
                    .next()
                    .and_then(|v| v.parse::<u64>().ok())
                    .ok_or("--drain-ms needs a non-negative integer")?;
                opts.drain = Duration::from_millis(ms);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    if let Some(data_dir) = data_dir {
        opts.config.durability = Some(DurabilityOptions {
            data_dir,
            fsync,
            checkpoint_every,
            io: None,
        });
    }
    Ok(opts)
}

fn parse_positive(value: Option<String>, flag: &str) -> Result<usize, String> {
    value
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .ok_or_else(|| format!("{flag} needs a positive integer"))
}

fn main() -> ExitCode {
    let opts = match parse_args(std::env::args()) {
        Ok(opts) => opts,
        Err(message) => {
            eprintln!("pager-serve: {message}");
            return usage();
        }
    };
    let service = match PagerService::try_new(opts.config) {
        Ok(service) => Arc::new(service),
        Err(e) => {
            eprintln!("pager-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Some(report) = service.recovery() {
        eprintln!(
            "pager-serve: recovered generation {} ({} snapshot, {} WAL records replayed, {} torn bytes truncated)",
            report.generation,
            if report.snapshot_loaded { "with" } else { "no" },
            report.recovered_records,
            report.truncated_bytes,
        );
    }
    if opts.stdio {
        let stdin = std::io::stdin();
        let stdout = std::io::stdout();
        if let Err(e) = serve_lines(&service, stdin.lock(), stdout.lock()) {
            eprintln!("pager-serve: I/O error: {e}");
            return ExitCode::FAILURE;
        }
    } else {
        let mut handle =
            match serve_tcp_with(Arc::clone(&service), opts.addr.as_str(), opts.event_loops) {
                Ok(handle) => handle,
                Err(e) => {
                    eprintln!("pager-serve: cannot bind {}: {e}", opts.addr);
                    return ExitCode::FAILURE;
                }
            };
        eprintln!("pager-serve: listening on {}", handle.local_addr());
        handle.join();
        eprintln!("pager-serve: draining");
        let pending = handle.drain(opts.drain);
        if pending == 0 {
            eprintln!("pager-serve: shutting down (drained cleanly)");
        } else {
            eprintln!("pager-serve: shutting down ({pending} requests still in flight)");
        }
    }
    service.shutdown();
    if opts.metrics_json {
        println!("{}", service.metrics().to_json());
    }
    ExitCode::SUCCESS
}
